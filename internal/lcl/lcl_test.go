package lcl

import (
	"strings"
	"testing"

	"lclgrid/internal/grid"
)

func TestVertexColoringVerify(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5} {
		p := VertexColoring(k, 2)
		if p.K() != k {
			t.Fatalf("K = %d, want %d", p.K(), k)
		}
		n := 2 * k // divisible by k so the diagonal colouring closes up
		g := grid.Square(n)
		lab := make([]int, g.N())
		for v := range lab {
			x, y := g.XY(v)
			lab[v] = (x + y) % k
		}
		if err := p.Verify(g, lab); err != nil {
			t.Errorf("k=%d: diagonal colouring rejected: %v", k, err)
		}
		lab[0] = lab[g.At(1, 0)]
		if err := p.Verify(g, lab); err == nil {
			t.Errorf("k=%d: monochromatic edge accepted", k)
		}
	}
}

func TestVertexColoringNoConstantSolutions(t *testing.T) {
	if got := VertexColoring(4, 2).ConstantSolutions(); got != nil {
		t.Errorf("colouring should have no constant solutions, got %v", got)
	}
}

func TestIndependentSetTrivial(t *testing.T) {
	p := IndependentSet(2)
	cs := p.ConstantSolutions()
	if len(cs) != 1 || p.Label(cs[0]) != "out" {
		t.Errorf("ConstantSolutions = %v", cs)
	}
	g := grid.Square(5)
	if err := p.Verify(g, make([]int, g.N())); err != nil {
		t.Errorf("all-out rejected: %v", err)
	}
}

func TestXOrientationInputOrientationIsTrivialFor2(t *testing.T) {
	// Thm 22: the problem is O(1) when 2 ∈ X — the consistent input
	// orientation solves it; that corresponds to a constant label.
	p := XOrientation([]int{2}, 2)
	if len(p.ConstantSolutions()) == 0 {
		t.Fatal("X={2} should admit a constant solution")
	}
	g := grid.Square(4)
	o := NewOrientation(g)
	lab, err := o.ToLabels(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(g, lab); err != nil {
		t.Errorf("input orientation rejected: %v", err)
	}
}

func TestXOrientationLabelCounts(t *testing.T) {
	if got := XOrientation([]int{0, 1, 2, 3, 4}, 2).K(); got != 16 {
		t.Errorf("full X label count = %d, want 16", got)
	}
	if got := XOrientation([]int{0}, 2).K(); got != 1 {
		t.Errorf("X={0} label count = %d, want 1", got)
	}
	if got := XOrientation([]int{1, 3}, 2).K(); got != 8 {
		t.Errorf("X={1,3} label count = %d, want 8", got)
	}
}

func TestXOrientationRoundTrip(t *testing.T) {
	p := XOrientation([]int{0, 1, 2, 3, 4}, 2)
	g := grid.Square(4)
	o := NewOrientation(g)
	// Flip a few edges.
	o.Out[0][g.At(1, 1)] = false
	o.Out[1][g.At(2, 3)] = false
	lab, err := o.ToLabels(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(g, lab); err != nil {
		t.Fatalf("verify failed: %v", err)
	}
	back := OrientationFromLabels(p, g, lab)
	for i := 0; i < 2; i++ {
		for v := 0; v < g.N(); v++ {
			if back.Out[i][v] != o.Out[i][v] {
				t.Fatalf("orientation round trip mismatch at dim %d node %d", i, v)
			}
		}
	}
}

func TestOrientationInDegreeSum(t *testing.T) {
	g := grid.Square(5)
	o := NewOrientation(g)
	o.Out[0][3] = false
	o.Out[1][7] = false
	sum := 0
	for v := 0; v < g.N(); v++ {
		sum += o.InDegree(v)
	}
	if sum != 2*g.N() { // one in-degree unit per edge endpoint orientation: #edges = 2n²
		t.Errorf("total in-degree = %d, want %d", sum, 2*g.N())
	}
}

func TestOrientationVerifyX(t *testing.T) {
	g := grid.Square(4)
	o := NewOrientation(g)
	if err := o.VerifyX([]int{2}); err != nil {
		t.Errorf("input orientation should have in-degree 2 everywhere: %v", err)
	}
	if err := o.VerifyX([]int{0, 4}); err == nil {
		t.Error("expected X violation")
	}
}

func TestEdgeColoringLabelCount(t *testing.T) {
	if got := EdgeColoring(5, 2).K(); got != 120 {
		t.Errorf("edge 5-colouring labels = %d, want 120", got)
	}
	if got := EdgeColoring(4, 2).K(); got != 24 {
		t.Errorf("edge 4-colouring labels = %d, want 24", got)
	}
	if got := EdgeColoring(3, 1).K(); got != 6 {
		t.Errorf("1-D edge 3-colouring labels = %d, want 6", got)
	}
}

func TestEdgeColoringFourColorsEvenTorus(t *testing.T) {
	p := EdgeColoring(4, 2)
	g := grid.Square(6)
	e := NewEdgeColors(g)
	for v := 0; v < g.N(); v++ {
		x, y := g.XY(v)
		e.C[0][v] = x % 2
		e.C[1][v] = 2 + y%2
	}
	if err := e.VerifyProper(4); err != nil {
		t.Fatalf("striped colouring improper: %v", err)
	}
	lab, err := e.ToLabels(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(g, lab); err != nil {
		t.Errorf("SFT verify rejected proper colouring: %v", err)
	}
	// Break one edge: duplicate colour at a node.
	e.C[0][0] = e.C[1][0]
	if err := e.VerifyProper(4); err == nil {
		t.Error("expected improper colouring to be rejected")
	}
	if _, err := e.ToLabels(p); err == nil {
		t.Error("expected encoding of improper colouring to fail")
	}
}

func TestMISEncodeVerify(t *testing.T) {
	p := MIS(2)
	if p.K() != 16 {
		t.Fatalf("MIS labels = %d, want 16", p.K())
	}
	g := grid.Square(5)
	set := greedyMIS(g)
	lab, err := MISToLabels(p, g, set)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(g, lab); err != nil {
		t.Fatalf("valid MIS rejected: %v", err)
	}
	back := SetFromMISLabels(p, lab)
	for v := range set {
		if back[v] != set[v] {
			t.Fatal("MIS round trip mismatch")
		}
	}
	// Remove one member: some node becomes undominated or a claim false.
	for v := range set {
		if set[v] {
			bad := append([]bool(nil), set...)
			bad[v] = false
			if lab2, err := MISToLabels(p, g, bad); err == nil {
				if err := p.Verify(g, lab2); err == nil {
					t.Fatal("non-maximal set passed verification")
				}
			}
			break
		}
	}
}

func greedyMIS(g *grid.Torus) []bool {
	set := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		ok := true
		for p := 0; p < g.Degree(v); p++ {
			if set[g.Neighbor(v, p)] {
				ok = false
				break
			}
		}
		if ok {
			set[v] = true
		}
	}
	return set
}

func TestMaximalMatchingVerify(t *testing.T) {
	p := MaximalMatching(2)
	if p.K() != 5 {
		t.Fatalf("matching labels = %d, want 5", p.K())
	}
	g := grid.Square(4)
	// Perfect matching along x: even x matched east, odd x matched west.
	lab := make([]int, g.N())
	east := p.LabelIndex("matched:E")
	west := p.LabelIndex("matched:W")
	if east < 0 || west < 0 {
		t.Fatal("label names missing")
	}
	for v := 0; v < g.N(); v++ {
		x, _ := g.XY(v)
		if x%2 == 0 {
			lab[v] = east
		} else {
			lab[v] = west
		}
	}
	if err := p.Verify(g, lab); err != nil {
		t.Fatalf("perfect matching rejected: %v", err)
	}
	// All unmatched: violates maximality.
	un := p.LabelIndex("unmatched")
	for v := range lab {
		lab[v] = un
	}
	if err := p.Verify(g, lab); err == nil {
		t.Error("all-unmatched accepted")
	}
}

func TestVerifyDimensionMismatch(t *testing.T) {
	p := VertexColoring(3, 2)
	c := grid.Cycle(5)
	if err := p.Verify(c, make([]int, 5)); err == nil {
		t.Error("expected dimension mismatch error")
	}
}

func TestVerifyBadInput(t *testing.T) {
	p := VertexColoring(3, 2)
	g := grid.Square(3)
	if err := p.Verify(g, make([]int, 2)); err == nil {
		t.Error("expected length mismatch error")
	}
	lab := make([]int, g.N())
	lab[0] = 99
	if err := p.Verify(g, lab); err == nil || !strings.Contains(err.Error(), "outside alphabet") {
		t.Errorf("expected alphabet error, got %v", err)
	}
}

func TestLabelIndex(t *testing.T) {
	p := VertexColoring(3, 2)
	if p.LabelIndex("2") != 1 {
		t.Error("LabelIndex wrong")
	}
	if p.LabelIndex("nope") != -1 {
		t.Error("missing label should give -1")
	}
}

func TestPortName(t *testing.T) {
	if PortName(2, 0) != "E" || PortName(2, 3) != "S" {
		t.Error("2-D port names wrong")
	}
	if PortName(3, 4) != "2+" || PortName(3, 5) != "2-" {
		t.Error("generic port names wrong")
	}
}

func TestProblemString(t *testing.T) {
	s := VertexColoring(4, 2).String()
	if !strings.Contains(s, "4-colouring") || !strings.Contains(s, "4 labels") {
		t.Errorf("String = %q", s)
	}
}
