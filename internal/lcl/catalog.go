package lcl

import (
	"fmt"
	"math/bits"
	"sort"
)

// PortName returns a human-readable name for port p on a dims-dimensional
// grid (E, W, N, S in two dimensions; "0+", "0-", ... otherwise).
func PortName(dims, p int) string {
	if dims == 2 {
		return [...]string{"E", "W", "N", "S"}[p]
	}
	sign := "+"
	if p%2 == 1 {
		sign = "-"
	}
	return fmt.Sprintf("%d%s", p/2, sign)
}

// VertexColoring returns the proper k-colouring problem on
// dims-dimensional grids: adjacent nodes receive different labels. The
// paper shows (Thms 4 and 9) that on 2-dimensional grids this is
// Θ(log* n) for k >= 4 and global for k <= 3.
func VertexColoring(k, dims int) *Problem {
	labels := make([]string, k)
	for i := range labels {
		labels[i] = fmt.Sprintf("%d", i+1)
	}
	return NewProblem(
		fmt.Sprintf("%d-colouring", k),
		labels, dims,
		func(dim, a, b int) bool { return a != b },
		nil,
	)
}

// IndependentSet returns the (not necessarily maximal) independent-set
// problem: labels "out"/"in", no two adjacent "in". The empty set is a
// solution, so the problem is trivial — O(1) (cf. Fig. 2).
func IndependentSet(dims int) *Problem {
	return NewProblem(
		"independent set",
		[]string{"out", "in"}, dims,
		func(dim, a, b int) bool { return !(a == 1 && b == 1) },
		nil,
	)
}

// OrientationProblem is an X-orientation problem (§11) in SFT form
// together with its decoding metadata.
type OrientationProblem struct {
	*Problem
	// X is the sorted set of allowed in-degrees.
	X []int
	// Masks[label] is a bitmask over ports; bit p set means the edge at
	// port p is oriented towards the node (contributes to its in-degree).
	Masks []uint
}

// XOrientation returns the X-orientation problem on dims-dimensional
// grids: orient every edge so that each node's in-degree lies in X.
// Each label fixes the direction of all 2·dims incident edges; the
// per-dimension relations force the two endpoints of an edge to agree.
// X must contain at least one value in [0, 2·dims].
func XOrientation(x []int, dims int) *OrientationProblem {
	xs := append([]int(nil), x...)
	sort.Ints(xs)
	inX := make(map[int]bool, len(xs))
	for _, d := range xs {
		inX[d] = true
	}
	ports := 2 * dims
	var labels []string
	var masks []uint
	for m := 0; m < 1<<ports; m++ {
		if !inX[bits.OnesCount(uint(m))] {
			continue
		}
		name := "in:"
		if m == 0 {
			name = "in:∅"
		}
		for p := 0; p < ports; p++ {
			if m&(1<<p) != 0 {
				name += PortName(dims, p)
			}
		}
		labels = append(labels, name)
		masks = append(masks, uint(m))
	}
	if len(labels) == 0 {
		panic(fmt.Sprintf("lcl: X-orientation with X=%v has no valid labels", x))
	}
	p := NewProblem(
		fmt.Sprintf("X-orientation X=%v", xs),
		labels, dims,
		func(dim, a, b int) bool {
			// The edge between u and its positive neighbour v in dim is
			// u's port 2*dim and v's port 2*dim+1; exactly one endpoint
			// sees it as incoming.
			ain := masks[a]&(1<<(2*dim)) != 0
			bin := masks[b]&(1<<(2*dim+1)) != 0
			return ain != bin
		},
		nil,
	)
	return &OrientationProblem{Problem: p, X: xs, Masks: masks}
}

// EdgeColoringProblem is the proper edge k-colouring problem (§10) in SFT
// form together with its decoding metadata.
type EdgeColoringProblem struct {
	*Problem
	// KColors is the number of edge colours.
	KColors int
	// Tuples[label][port] is the colour of the half-edge at that port.
	Tuples [][]int
}

// EdgeColoring returns the proper edge k-colouring problem on
// dims-dimensional grids: adjacent edges (sharing a node) receive
// different colours. Labels are injective assignments of colours to the
// 2·dims ports; relations force the two endpoints of an edge to agree on
// its colour. Requires k >= 2·dims (otherwise no labels exist).
func EdgeColoring(k, dims int) *EdgeColoringProblem {
	ports := 2 * dims
	if k < ports {
		panic(fmt.Sprintf("lcl: edge %d-colouring needs at least %d colours on %d-dimensional grids", k, ports, dims))
	}
	var labels []string
	var tuples [][]int
	tuple := make([]int, ports)
	used := make([]bool, k)
	var rec func(p int)
	rec = func(p int) {
		if p == ports {
			name := ""
			for q, c := range tuple {
				if q > 0 {
					name += ","
				}
				name += fmt.Sprintf("%s=%d", PortName(dims, q), c+1)
			}
			labels = append(labels, name)
			tuples = append(tuples, append([]int(nil), tuple...))
			return
		}
		for c := 0; c < k; c++ {
			if used[c] {
				continue
			}
			used[c] = true
			tuple[p] = c
			rec(p + 1)
			used[c] = false
		}
	}
	rec(0)
	p := NewProblem(
		fmt.Sprintf("edge %d-colouring", k),
		labels, dims,
		func(dim, a, b int) bool { return tuples[a][2*dim] == tuples[b][2*dim+1] },
		nil,
	)
	return &EdgeColoringProblem{Problem: p, KColors: k, Tuples: tuples}
}

// MISProblem is the maximal-independent-set problem in SFT form together
// with its decoding metadata.
type MISProblem struct {
	*Problem
	// InSet[label] reports whether the node itself is in the set.
	InSet []bool
	// Claims[label] is a bitmask over ports: bit p set means the label
	// claims the neighbour at port p is in the set.
	Claims []uint
}

// MIS returns the maximal-independent-set problem: the "in" label's
// neighbours must all be "out" (independence) and every "out" node must
// have an "in" neighbour (maximality, expressed through claimed
// neighbour memberships that the relations force to be truthful).
func MIS(dims int) *MISProblem {
	ports := 2 * dims
	var labels []string
	var inSet []bool
	var claims []uint
	// The member label: in the set, all neighbours out.
	labels = append(labels, "in")
	inSet = append(inSet, true)
	claims = append(claims, 0)
	// Non-member labels: at least one claimed member neighbour.
	for m := 1; m < 1<<ports; m++ {
		name := "out,nbrs:"
		for p := 0; p < ports; p++ {
			if m&(1<<p) != 0 {
				name += PortName(dims, p)
			}
		}
		labels = append(labels, name)
		inSet = append(inSet, false)
		claims = append(claims, uint(m))
	}
	p := NewProblem(
		"maximal independent set",
		labels, dims,
		func(dim, a, b int) bool {
			aClaims := claims[a]&(1<<(2*dim)) != 0
			bClaims := claims[b]&(1<<(2*dim+1)) != 0
			return aClaims == inSet[b] && bClaims == inSet[a]
		},
		nil,
	)
	return &MISProblem{Problem: p, InSet: inSet, Claims: claims}
}

// MatchingProblem is the maximal-matching problem in SFT form together
// with its decoding metadata.
type MatchingProblem struct {
	*Problem
	// Via[label] is the port of the matched edge, or -1 for unmatched.
	Via []int
}

// MaximalMatching returns the maximal-matching problem: every node is
// matched along at most one incident edge, matched edges agree at both
// endpoints, and no edge has both endpoints unmatched.
func MaximalMatching(dims int) *MatchingProblem {
	ports := 2 * dims
	labels := []string{"unmatched"}
	via := []int{-1}
	for p := 0; p < ports; p++ {
		labels = append(labels, "matched:"+PortName(dims, p))
		via = append(via, p)
	}
	p := NewProblem(
		"maximal matching",
		labels, dims,
		func(dim, a, b int) bool {
			if via[a] == -1 && via[b] == -1 {
				return false // unmatched edge between unmatched nodes
			}
			return (via[a] == 2*dim) == (via[b] == 2*dim+1)
		},
		nil,
	)
	return &MatchingProblem{Problem: p, Via: via}
}
