package lcl

import (
	"fmt"

	"lclgrid/internal/grid"
)

// EdgeColors is a colouring of the edges of a torus: C[dim][v] is the
// colour of the edge from v in the positive direction of dimension dim.
// Every edge is stored exactly once, at its negative endpoint.
type EdgeColors struct {
	T *grid.Torus
	C [][]int
}

// NewEdgeColors allocates an all-zero edge colouring for t.
func NewEdgeColors(t *grid.Torus) *EdgeColors {
	c := make([][]int, t.Dim())
	for i := range c {
		c[i] = make([]int, t.N())
	}
	return &EdgeColors{T: t, C: c}
}

// IncidentColors returns the colours of the 2d edges incident to v, in
// port order (dim0+, dim0-, dim1+, dim1-, ...).
func (e *EdgeColors) IncidentColors(v int) []int {
	out := make([]int, 0, 2*e.T.Dim())
	for i := 0; i < e.T.Dim(); i++ {
		out = append(out, e.C[i][v], e.C[i][e.T.Move(v, i, -1)])
	}
	return out
}

// VerifyProper checks that e is a proper edge colouring with colours in
// [0, k): edges sharing a node have pairwise different colours.
func (e *EdgeColors) VerifyProper(k int) error {
	for v := 0; v < e.T.N(); v++ {
		inc := e.IncidentColors(v)
		seen := make(map[int]bool, len(inc))
		for _, c := range inc {
			if c < 0 || c >= k {
				return fmt.Errorf("lcl: node %d has incident edge colour %d outside [0,%d)", v, c, k)
			}
			if seen[c] {
				return fmt.Errorf("lcl: node %d has two incident edges of colour %d", v, c)
			}
			seen[c] = true
		}
	}
	return nil
}

// ToLabels encodes the edge colouring as a labelling of the SFT problem p.
// It fails if some node's incident colours do not form a valid label
// (e.g. repeated colours).
func (e *EdgeColors) ToLabels(p *EdgeColoringProblem) ([]int, error) {
	index := make(map[string]int, len(p.Tuples))
	for l, tup := range p.Tuples {
		index[fmt.Sprint(tup)] = l
	}
	out := make([]int, e.T.N())
	for v := range out {
		l, ok := index[fmt.Sprint(e.IncidentColors(v))]
		if !ok {
			return nil, fmt.Errorf("lcl: node %d incident colours %v are not a valid %s label", v, e.IncidentColors(v), p.Name())
		}
		out[v] = l
	}
	return out, nil
}

// Orientation is an orientation of the edges of a torus: Out[dim][v]
// reports whether the edge from v in the positive direction of dim is
// oriented away from v.
type Orientation struct {
	T   *grid.Torus
	Out [][]bool
}

// NewOrientation allocates an orientation of t with all edges pointing in
// the positive direction (the input orientation of the grid; in-degree d
// everywhere).
func NewOrientation(t *grid.Torus) *Orientation {
	o := make([][]bool, t.Dim())
	for i := range o {
		o[i] = make([]bool, t.N())
		for v := range o[i] {
			o[i][v] = true
		}
	}
	return &Orientation{T: t, Out: o}
}

// InDegree returns the number of edges oriented towards v.
func (o *Orientation) InDegree(v int) int {
	deg := 0
	for i := 0; i < o.T.Dim(); i++ {
		if !o.Out[i][v] { // positive edge points back at v
			deg++
		}
		if o.Out[i][o.T.Move(v, i, -1)] { // negative neighbour points at v
			deg++
		}
	}
	return deg
}

// VerifyX checks that every node's in-degree is in the set x.
func (o *Orientation) VerifyX(x []int) error {
	ok := make(map[int]bool, len(x))
	for _, d := range x {
		ok[d] = true
	}
	for v := 0; v < o.T.N(); v++ {
		if d := o.InDegree(v); !ok[d] {
			return fmt.Errorf("lcl: node %d has in-degree %d, not in X=%v", v, d, x)
		}
	}
	return nil
}

// ToLabels encodes the orientation as a labelling of the SFT problem p.
// It fails if some node's in-degree is not in p.X.
func (o *Orientation) ToLabels(p *OrientationProblem) ([]int, error) {
	index := make(map[uint]int, len(p.Masks))
	for l, m := range p.Masks {
		index[m] = l
	}
	out := make([]int, o.T.N())
	for v := range out {
		var mask uint
		for i := 0; i < o.T.Dim(); i++ {
			if !o.Out[i][v] {
				mask |= 1 << (2 * i)
			}
			if o.Out[i][o.T.Move(v, i, -1)] {
				mask |= 1 << (2*i + 1)
			}
		}
		l, ok := index[mask]
		if !ok {
			return nil, fmt.Errorf("lcl: node %d in-degree %d not allowed by %s", v, o.InDegree(v), p.Name())
		}
		out[v] = l
	}
	return out, nil
}

// OrientationFromLabels decodes a labelling of the SFT problem p into an
// explicit orientation. The labelling should satisfy p (use Verify);
// inconsistent labellings yield an orientation that disagrees with some
// labels' claims.
func OrientationFromLabels(p *OrientationProblem, t *grid.Torus, labelling []int) *Orientation {
	o := NewOrientation(t)
	for v := 0; v < t.N(); v++ {
		mask := p.Masks[labelling[v]]
		for i := 0; i < t.Dim(); i++ {
			// Bit 2i set: the positive edge of v is incoming at v.
			o.Out[i][v] = mask&(1<<(2*i)) == 0
		}
	}
	return o
}

// SetFromMISLabels decodes a labelling of the MIS problem into the
// membership set.
func SetFromMISLabels(p *MISProblem, labelling []int) []bool {
	out := make([]bool, len(labelling))
	for v, l := range labelling {
		out[v] = p.InSet[l]
	}
	return out
}

// MISToLabels encodes a maximal independent set as a labelling of the MIS
// problem: each non-member's claims are its neighbours' true memberships.
func MISToLabels(p *MISProblem, t *grid.Torus, set []bool) ([]int, error) {
	index := make(map[uint]int, len(p.Claims))
	memberLabel := -1
	for l := range p.Claims {
		if p.InSet[l] {
			memberLabel = l
		} else {
			index[p.Claims[l]] = l
		}
	}
	out := make([]int, t.N())
	for v := range out {
		if set[v] {
			out[v] = memberLabel
			continue
		}
		var mask uint
		for port := 0; port < 2*t.Dim(); port++ {
			if set[t.Neighbor(v, port)] {
				mask |= 1 << port
			}
		}
		l, ok := index[mask]
		if !ok {
			return nil, fmt.Errorf("lcl: node %d is not dominated (set not maximal)", v)
		}
		out[v] = l
	}
	return out, nil
}
