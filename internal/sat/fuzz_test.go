package sat

import (
	"context"
	"testing"
)

// dpllRef is a deliberately naive DPLL used as the reference oracle for
// differential fuzzing: unit propagation plus chronological branching on
// the first unassigned variable, with copied assignments instead of an
// undo trail. It shares no code with the CDCL solver under test.
// assign: 0 unassigned, 1 true, -1 false.
func dpllRef(clauses [][]Lit, assign []int8) bool {
	for changed := true; changed; {
		changed = false
		for _, c := range clauses {
			unassigned, sat := 0, false
			var unit Lit
			for _, l := range c {
				switch v := assign[l.Var()]; {
				case v == 0:
					unassigned++
					unit = l
				case (v == 1) == l.Positive():
					sat = true
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			if unassigned == 0 {
				return false
			}
			if unassigned == 1 {
				if unit.Positive() {
					assign[unit.Var()] = 1
				} else {
					assign[unit.Var()] = -1
				}
				changed = true
			}
		}
	}
	branch := -1
	for v := range assign {
		if assign[v] == 0 {
			branch = v
			break
		}
	}
	if branch < 0 {
		// Fully assigned with no falsified clause found above.
		return true
	}
	for _, val := range []int8{1, -1} {
		cp := append([]int8(nil), assign...)
		cp[branch] = val
		if dpllRef(clauses, cp) {
			return true
		}
	}
	return false
}

// decodeCNF turns fuzz bytes into a small CNF. Byte 0 picks the variable
// count (1..12); each following byte is a literal (b>>1 mod n, sign b&1)
// except 0xFF, which terminates the current clause. Clauses and widths
// are capped to keep the reference oracle cheap.
func decodeCNF(data []byte) (n int, clauses [][]Lit) {
	if len(data) == 0 {
		return 0, nil
	}
	n = 1 + int(data[0])%12
	var cur []Lit
	for _, b := range data[1:] {
		if b == 0xFF {
			if len(cur) > 0 {
				clauses = append(clauses, cur)
				cur = nil
				if len(clauses) == 48 {
					break
				}
			}
			continue
		}
		if len(cur) < 6 {
			v := int(b>>1) % n
			if b&1 == 0 {
				cur = append(cur, Pos(v))
			} else {
				cur = append(cur, Neg(v))
			}
		}
	}
	if len(cur) > 0 && len(clauses) < 48 {
		clauses = append(clauses, cur)
	}
	return n, clauses
}

// FuzzSATSolver differentially fuzzes the CDCL solver against the naive
// DPLL reference: answers must match, SAT models must satisfy every
// clause, and an assumption-based re-solve must match DPLL on the
// formula extended with the assumptions as units.
func FuzzSATSolver(f *testing.F) {
	f.Add([]byte{3, 0, 2, 0xFF, 1, 3, 0xFF, 5, 0xFF})                   // mixed units and binaries
	f.Add([]byte{2, 0, 0xFF, 1, 0xFF})                                  // x0 ∧ ¬x0: UNSAT
	f.Add([]byte{8, 0, 2, 4, 0xFF, 1, 3, 0xFF, 5, 7, 9, 0xFF, 6, 0xFF}) // wider mix
	f.Add([]byte{12, 0, 3, 0xFF, 2, 5, 0xFF, 4, 7, 0xFF, 6, 9, 0xFF, 8, 11, 0xFF, 10, 1, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, clauses := decodeCNF(data)
		if n == 0 {
			return
		}
		want := dpllRef(clauses, make([]int8, n))

		s := NewSolver(n)
		for _, c := range clauses {
			s.AddClause(c...)
		}
		got := s.Solve()
		if got != want {
			t.Fatalf("CDCL=%v DPLL=%v on n=%d clauses=%v", got, want, n, clauses)
		}
		if got {
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if s.Value(l.Var()) == l.Positive() {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("model violates clause %v (n=%d clauses=%v)", c, n, clauses)
				}
			}
		}

		// Derive up to two assumptions from the tail of the input and
		// cross-check incremental solving on the same solver instance.
		var assumps []Lit
		for i := 0; i < 2 && i < len(data); i++ {
			b := data[len(data)-1-i]
			if b == 0xFF {
				continue
			}
			v := int(b>>1) % n
			if b&1 == 0 {
				assumps = append(assumps, Pos(v))
			} else {
				assumps = append(assumps, Neg(v))
			}
		}
		if len(assumps) == 0 {
			return
		}
		extended := append([][]Lit(nil), clauses...)
		for _, a := range assumps {
			extended = append(extended, []Lit{a})
		}
		wantAssumed := dpllRef(extended, make([]int8, n))
		gotAssumed, err := s.SolveAssuming(context.Background(), assumps...)
		if err != nil {
			t.Fatal(err)
		}
		if gotAssumed != wantAssumed {
			t.Fatalf("SolveAssuming=%v DPLL=%v on n=%d clauses=%v assumps=%v", gotAssumed, wantAssumed, n, clauses, assumps)
		}
		if s.Solve() != want {
			t.Fatalf("plain answer changed after assumption solve (n=%d clauses=%v assumps=%v)", n, clauses, assumps)
		}
	})
}
