package sat

import (
	"math/rand"
	"testing"
)

func TestLit(t *testing.T) {
	l := Pos(3)
	if l.Var() != 3 || !l.Positive() {
		t.Error("Pos broken")
	}
	if l.Not() != Neg(3) || l.Not().Positive() {
		t.Error("Not broken")
	}
	if Neg(3).Not() != Pos(3) {
		t.Error("double negation broken")
	}
	if Pos(2).String() != "x2" || Neg(2).String() != "¬x2" {
		t.Error("String broken")
	}
}

func TestEmptyFormulaSAT(t *testing.T) {
	s := NewSolver(3)
	if !s.Solve() {
		t.Error("empty formula should be SAT")
	}
}

func TestUnitClauses(t *testing.T) {
	s := NewSolver(2)
	s.AddClause(Pos(0))
	s.AddClause(Neg(1))
	if !s.Solve() {
		t.Fatal("should be SAT")
	}
	if !s.Value(0) || s.Value(1) {
		t.Error("unit assignment wrong")
	}
}

func TestContradictoryUnits(t *testing.T) {
	s := NewSolver(1)
	s.AddClause(Pos(0))
	s.AddClause(Neg(0))
	if s.Solve() {
		t.Error("x ∧ ¬x should be UNSAT")
	}
}

func TestEmptyClause(t *testing.T) {
	s := NewSolver(1)
	s.AddClause()
	if s.Solve() {
		t.Error("empty clause should be UNSAT")
	}
}

func TestTautologyDropped(t *testing.T) {
	s := NewSolver(1)
	s.AddClause(Pos(0), Neg(0))
	if !s.Solve() {
		t.Error("tautology-only formula should be SAT")
	}
}

func TestPropagationChain(t *testing.T) {
	// x0 ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2) ∧ ... forces all true.
	n := 50
	s := NewSolver(n)
	s.AddClause(Pos(0))
	for i := 0; i+1 < n; i++ {
		s.AddClause(Neg(i), Pos(i+1))
	}
	if !s.Solve() {
		t.Fatal("chain should be SAT")
	}
	for i := 0; i < n; i++ {
		if !s.Value(i) {
			t.Fatalf("x%d should be true", i)
		}
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(p, h): p pigeons into h holes, each pigeon in some hole, no two
	// pigeons share a hole. UNSAT iff p > h.
	build := func(p, h int) *Solver {
		s := NewSolver(p * h)
		v := func(i, j int) int { return i*h + j }
		for i := 0; i < p; i++ {
			lits := make([]Lit, h)
			for j := 0; j < h; j++ {
				lits[j] = Pos(v(i, j))
			}
			s.AddClause(lits...)
		}
		for j := 0; j < h; j++ {
			for i1 := 0; i1 < p; i1++ {
				for i2 := i1 + 1; i2 < p; i2++ {
					s.AddClause(Neg(v(i1, j)), Neg(v(i2, j)))
				}
			}
		}
		return s
	}
	if build(4, 4).Solve() != true {
		t.Error("PHP(4,4) should be SAT")
	}
	if build(5, 4).Solve() != false {
		t.Error("PHP(5,4) should be UNSAT")
	}
	if build(7, 6).Solve() != false {
		t.Error("PHP(7,6) should be UNSAT")
	}
}

func TestGraphColoring(t *testing.T) {
	// K4 is 4-colourable but not 3-colourable.
	solve := func(k int) bool {
		s := NewSolver(4 * k)
		v := func(node, c int) int { return node*k + c }
		for node := 0; node < 4; node++ {
			lits := make([]Lit, k)
			for c := 0; c < k; c++ {
				lits[c] = Pos(v(node, c))
			}
			s.AddClause(lits...)
		}
		for a := 0; a < 4; a++ {
			for b := a + 1; b < 4; b++ {
				for c := 0; c < k; c++ {
					s.AddClause(Neg(v(a, c)), Neg(v(b, c)))
				}
			}
		}
		return s.Solve()
	}
	if solve(3) {
		t.Error("K4 should not be 3-colourable")
	}
	if !solve(4) {
		t.Error("K4 should be 4-colourable")
	}
}

// bruteForce decides satisfiability by enumeration (n <= ~20).
func bruteForce(n int, clauses [][]Lit) bool {
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				val := mask&(1<<l.Var()) != 0
				if val == l.Positive() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 400; trial++ {
		n := 3 + rng.Intn(8)
		m := 2 + rng.Intn(5*n)
		clauses := make([][]Lit, m)
		for i := range clauses {
			width := 1 + rng.Intn(3)
			c := make([]Lit, width)
			for j := range c {
				v := rng.Intn(n)
				if rng.Intn(2) == 0 {
					c[j] = Pos(v)
				} else {
					c[j] = Neg(v)
				}
			}
			clauses[i] = c
		}
		want := bruteForce(n, clauses)
		s := NewSolver(n)
		for _, c := range clauses {
			s.AddClause(c...)
		}
		got := s.Solve()
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v, clauses=%v", trial, got, want, clauses)
		}
		if got {
			// Check the model actually satisfies all clauses.
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if s.Value(l.Var()) == l.Positive() {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: model does not satisfy clause %v", trial, c)
				}
			}
		}
	}
}

func TestHardRandom3SATSatisfiable(t *testing.T) {
	// Plant a solution to guarantee satisfiability, then solve.
	rng := rand.New(rand.NewSource(99))
	n := 150
	planted := make([]bool, n)
	for i := range planted {
		planted[i] = rng.Intn(2) == 0
	}
	s := NewSolver(n)
	for i := 0; i < 600; i++ {
		c := make([]Lit, 3)
		for {
			ok := false
			for j := range c {
				v := rng.Intn(n)
				if rng.Intn(2) == 0 {
					c[j] = Pos(v)
				} else {
					c[j] = Neg(v)
				}
				if planted[c[j].Var()] == c[j].Positive() {
					ok = true
				}
			}
			if ok {
				break
			}
		}
		s.AddClause(c...)
	}
	if !s.Solve() {
		t.Fatal("planted instance must be SAT")
	}
}

func TestStatsPopulated(t *testing.T) {
	s := NewSolver(20)
	// An unsatisfiable PHP-style core to force conflicts.
	for i := 0; i < 5; i++ {
		s.AddClause(Pos(4*i), Pos(4*i+1))
		s.AddClause(Neg(4*i), Neg(4*i+1))
		s.AddClause(Pos(4*i), Neg(4*i+1))
	}
	s.Solve()
	if s.Stats.Decisions == 0 && s.Stats.Conflicts == 0 {
		t.Error("expected some search activity")
	}
}

func TestDuplicateLiterals(t *testing.T) {
	s := NewSolver(2)
	s.AddClause(Pos(0), Pos(0), Pos(1))
	if !s.Solve() {
		t.Fatal("should be SAT")
	}
	if !s.Value(0) && !s.Value(1) {
		t.Error("clause not satisfied")
	}
}

func TestNumClausesAndVars(t *testing.T) {
	s := NewSolver(3)
	s.AddClause(Pos(0), Pos(1))
	s.AddClause(Neg(1), Pos(2))
	if s.NumVars() != 3 {
		t.Error("NumVars wrong")
	}
	if s.NumClauses() != 2 {
		t.Errorf("NumClauses = %d, want 2", s.NumClauses())
	}
}
