package sat

import (
	"context"
	"math/rand"
	"testing"
)

// TestBinaryPropagationEquivalence checks that the inline binary
// implication lists decide exactly like the long-clause watch path: every
// random formula is solved twice, once as-is (binary clauses inline) and
// once with each binary clause padded to length 3 by a fresh literal that
// a unit clause forces false (so it is stored and watched as a long
// clause). The two solvers must agree, and agree with brute force.
func TestBinaryPropagationEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(7)
		m := 2 + rng.Intn(6*n)
		clauses := make([][]Lit, m)
		for i := range clauses {
			width := 1 + rng.Intn(3)
			c := make([]Lit, width)
			for j := range c {
				v := rng.Intn(n)
				if rng.Intn(2) == 0 {
					c[j] = Pos(v)
				} else {
					c[j] = Neg(v)
				}
			}
			clauses[i] = c
		}

		inline := NewSolver(n)
		for _, c := range clauses {
			inline.AddClause(c...)
		}

		padded := NewSolver(n + 1)
		pad := n // always-false padding variable
		padded.AddClause(Neg(pad))
		for _, c := range clauses {
			if len(c) == 2 {
				padded.AddClause(c[0], c[1], Pos(pad))
			} else {
				padded.AddClause(c...)
			}
		}

		want := bruteForce(n, clauses)
		if got := inline.Solve(); got != want {
			t.Fatalf("trial %d: inline binary path = %v, brute force = %v (clauses %v)", trial, got, want, clauses)
		}
		if got := padded.Solve(); got != want {
			t.Fatalf("trial %d: padded long-clause path = %v, brute force = %v (clauses %v)", trial, got, want, clauses)
		}
	}
}

// TestReduceDBKeepsReasonClauses pins the locked-clause invariant: a
// learnt clause that is currently the reason for an assignment survives
// reduction no matter how bad its LBD/activity score is.
func TestReduceDBKeepsReasonClauses(t *testing.T) {
	s := NewSolver(9)
	// (x0 ∨ x1 ∨ x2) will become the reason for x0 once x1, x2 are
	// falsified at decision level 1.
	s.AddClause(Pos(0), Pos(1), Pos(2))
	// Two more long clauses that stay untouched by the propagation below.
	s.AddClause(Pos(3), Pos(4), Pos(5))
	s.AddClause(Pos(6), Pos(7), Pos(8))

	s.lim = append(s.lim, len(s.trail))
	s.enqueue(Neg(1), reasonNone)
	s.enqueue(Neg(2), reasonNone)
	if confl := s.propagate(); confl != conflNone {
		t.Fatalf("unexpected conflict %d", confl)
	}
	if s.assign[0] != lTrue || s.reason[0] != 0 {
		t.Fatalf("x0 not propagated from clause 0 (assign %d, reason %d)", s.assign[0], s.reason[0])
	}

	// Masquerade all three as learnt clauses; the locked one gets the
	// worst score so unchecked reduction would delete it first.
	for ci := range s.clauses {
		s.clauses[ci].learnt = true
	}
	s.clauses[0].lbd = 30
	s.clauses[1].lbd = 20
	s.clauses[2].lbd = 10
	s.numLearnts = 3

	s.reduceDB()

	if s.clauses[0].lits == nil {
		t.Fatal("reduceDB deleted a reason clause")
	}
	if !s.locked(0) {
		t.Fatal("clause 0 should still be the reason for x0")
	}
	// Of the two unlocked candidates, the worse-scored one must be gone.
	if s.clauses[1].lits != nil {
		t.Error("reduceDB kept the worst unlocked clause")
	}
	if s.clauses[2].lits == nil {
		t.Error("reduceDB deleted the better-scored unlocked clause")
	}
	if s.Stats.Deleted != 1 || s.numLearnts != 2 {
		t.Errorf("Deleted = %d, numLearnts = %d; want 1, 2", s.Stats.Deleted, s.numLearnts)
	}
	// The solver must still function after reduction.
	s.backtrack(0)
	if !s.Solve() {
		t.Fatal("formula should be SAT after reduction")
	}
}

// TestReduceDBUnderPressure forces constant database reductions on an
// instance with real conflicts and cross-checks the result: reduction
// must never change an answer, and NumClauses must not drift when learnt
// clauses come and go.
func TestReduceDBUnderPressure(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 120; trial++ {
		n := 6 + rng.Intn(6)
		m := 3 + rng.Intn(7*n)
		clauses := make([][]Lit, m)
		for i := range clauses {
			width := 2 + rng.Intn(2)
			c := make([]Lit, width)
			for j := range c {
				v := rng.Intn(n)
				if rng.Intn(2) == 0 {
					c[j] = Pos(v)
				} else {
					c[j] = Neg(v)
				}
			}
			clauses[i] = c
		}
		s := NewSolver(n)
		for _, c := range clauses {
			s.AddClause(c...)
		}
		before := s.NumClauses()
		s.maxLearnts = 1 // reduce at every opportunity
		want := bruteForce(n, clauses)
		if got := s.Solve(); got != want {
			t.Fatalf("trial %d: solver=%v brute=%v with constant reduction (clauses %v)", trial, got, want, clauses)
		}
		if s.NumClauses() != before {
			t.Fatalf("trial %d: NumClauses drifted %d -> %d across search", trial, before, s.NumClauses())
		}
	}
}

// TestSolveAssumingRestoresState checks the assumption contract: an
// UNSAT-under-assumptions outcome must not mark the formula
// unsatisfiable, and later calls — with other assumptions or none — see
// the same formula.
func TestSolveAssumingRestoresState(t *testing.T) {
	ctx := context.Background()
	s := NewSolver(3)
	s.AddClause(Pos(0), Pos(1))

	ok, err := s.SolveAssuming(ctx, Neg(0), Neg(1))
	if err != nil || ok {
		t.Fatalf("SolveAssuming(¬x0, ¬x1) = %v, %v; want false, nil", ok, err)
	}
	if !s.Solve() {
		t.Fatal("formula must still be SAT after an assumption refusal")
	}
	ok, err = s.SolveAssuming(ctx, Neg(0))
	if err != nil || !ok {
		t.Fatalf("SolveAssuming(¬x0) = %v, %v; want true, nil", ok, err)
	}
	if s.Value(0) || !s.Value(1) {
		t.Error("model must respect the assumption: ¬x0 forces x1")
	}
	// Assumptions contradicting each other refuse without damage.
	ok, err = s.SolveAssuming(ctx, Pos(2), Neg(2))
	if err != nil || ok {
		t.Fatalf("contradictory assumptions = %v, %v; want false, nil", ok, err)
	}
	if !s.Solve() {
		t.Fatal("formula must still be SAT after contradictory assumptions")
	}
	// Clauses may be added after searches; assumptions still work.
	s.AddClause(Neg(1), Pos(2))
	ok, err = s.SolveAssuming(ctx, Neg(0))
	if err != nil || !ok {
		t.Fatalf("post-AddClause SolveAssuming(¬x0) = %v, %v; want true, nil", ok, err)
	}
	if !s.Value(1) || !s.Value(2) {
		t.Error("¬x0 must force x1 and then x2")
	}
}

// TestSolveAssumingAgainstBruteForce differentially checks assumption
// solving: SolveAssuming(F, a...) must equal brute force on F plus the
// assumptions as units, and must leave the unassumed answer intact.
func TestSolveAssumingAgainstBruteForce(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(7)
		m := 2 + rng.Intn(5*n)
		clauses := make([][]Lit, m)
		for i := range clauses {
			width := 1 + rng.Intn(3)
			c := make([]Lit, width)
			for j := range c {
				v := rng.Intn(n)
				if rng.Intn(2) == 0 {
					c[j] = Pos(v)
				} else {
					c[j] = Neg(v)
				}
			}
			clauses[i] = c
		}
		nAssump := 1 + rng.Intn(2)
		assumps := make([]Lit, nAssump)
		for i := range assumps {
			v := rng.Intn(n)
			if rng.Intn(2) == 0 {
				assumps[i] = Pos(v)
			} else {
				assumps[i] = Neg(v)
			}
		}

		s := NewSolver(n)
		for _, c := range clauses {
			s.AddClause(c...)
		}
		wantPlain := bruteForce(n, clauses)
		withUnits := append(append([][]Lit(nil), clauses...), nil)
		for _, a := range assumps {
			withUnits[len(withUnits)-1] = []Lit{a}
			withUnits = append(withUnits, nil)
		}
		withUnits = withUnits[:len(withUnits)-1]
		wantAssumed := bruteForce(n, withUnits)

		got, err := s.SolveAssuming(ctx, assumps...)
		if err != nil {
			t.Fatal(err)
		}
		if got != wantAssumed {
			t.Fatalf("trial %d: SolveAssuming=%v brute=%v (clauses %v assumps %v)", trial, got, wantAssumed, clauses, assumps)
		}
		if got {
			for _, a := range assumps {
				if s.Value(a.Var()) != a.Positive() {
					t.Fatalf("trial %d: model violates assumption %v", trial, a)
				}
			}
		}
		if s.Solve() != wantPlain {
			t.Fatalf("trial %d: plain answer changed after assumption solve", trial)
		}
	}
}

// TestIncrementalModelEnumeration drives post-search AddClause hard: all
// models of a small formula are enumerated by repeatedly blocking the
// previous model.
func TestIncrementalModelEnumeration(t *testing.T) {
	n := 4
	s := NewSolver(n)
	s.AddClause(Pos(0), Pos(1), Pos(2), Pos(3)) // exclude all-false
	count := 0
	for s.Solve() {
		count++
		if count > 20 {
			t.Fatal("runaway enumeration")
		}
		block := make([]Lit, n)
		for v := 0; v < n; v++ {
			if s.Value(v) {
				block[v] = Neg(v)
			} else {
				block[v] = Pos(v)
			}
		}
		s.AddClause(block...)
	}
	if count != 15 {
		t.Errorf("enumerated %d models, want 15", count)
	}
}

// TestAddVarsGrowsSolver checks incremental variable growth between
// solves, the foundation of the synthesis sweep's per-shape blocks.
func TestAddVarsGrowsSolver(t *testing.T) {
	s := NewSolver(2)
	s.AddClause(Pos(0), Pos(1))
	if !s.Solve() {
		t.Fatal("should be SAT")
	}
	base := s.AddVars(3)
	if base != 2 || s.NumVars() != 5 {
		t.Fatalf("AddVars returned %d, NumVars %d; want 2, 5", base, s.NumVars())
	}
	s.AddClause(Pos(base), Pos(base+1))
	s.AddClause(Neg(base))
	if !s.Solve() {
		t.Fatal("grown formula should be SAT")
	}
	if s.Value(base) || !s.Value(base+1) {
		t.Error("new-variable constraints not honored")
	}
}

// TestLearntMinimizationSound cross-checks that self-subsumption
// minimization never changes an answer on conflict-heavy instances, and
// that it actually fires.
func TestLearntMinimizationSound(t *testing.T) {
	totalMinimized := 0
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 150; trial++ {
		n := 8 + rng.Intn(5)
		m := 4 + rng.Intn(6*n)
		clauses := make([][]Lit, m)
		for i := range clauses {
			width := 2 + rng.Intn(3)
			c := make([]Lit, width)
			for j := range c {
				v := rng.Intn(n)
				if rng.Intn(2) == 0 {
					c[j] = Pos(v)
				} else {
					c[j] = Neg(v)
				}
			}
			clauses[i] = c
		}
		s := NewSolver(n)
		for _, c := range clauses {
			s.AddClause(c...)
		}
		want := bruteForce(n, clauses)
		if got := s.Solve(); got != want {
			t.Fatalf("trial %d: solver=%v brute=%v (clauses %v)", trial, got, want, clauses)
		}
		totalMinimized += s.Stats.Minimized
	}
	if totalMinimized == 0 {
		t.Error("learned-clause minimization never removed a literal across 150 conflict-heavy instances")
	}
}
