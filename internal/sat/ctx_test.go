package sat

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestSolveContextResumesSoundly is the regression test for resuming
// after an abort: a context checkpoint fires at the top of the search
// loop, which can leave a decision enqueued on the trail but not yet
// propagated. A subsequent SolveContext must drop those stale decisions
// before its top-level propagation — otherwise a conflict that merely
// refutes the decision would be recorded as formula-level
// unsatisfiability.
func TestSolveContextResumesSoundly(t *testing.T) {
	// (x0 ∨ x1) ∧ (x0 ∨ ¬x1): satisfiable, exactly by x0 = true.
	s := NewSolver(2)
	s.AddClause(Pos(0), Pos(1))
	s.AddClause(Pos(0), Neg(1))
	// Reproduce the state an abort leaves behind: a decision ¬x0 at
	// level 1, enqueued but not propagated (the checkpoint fires between
	// the decision and the next propagate call).
	s.lim = append(s.lim, len(s.trail))
	if !s.enqueue(Neg(0), -1) {
		t.Fatal("setup: decision did not enqueue")
	}
	ok, err := s.SolveContext(context.Background())
	if err != nil {
		t.Fatalf("resume errored: %v", err)
	}
	if !ok {
		t.Fatal("resume decided UNSAT; refuting the stale decision was mistaken for refuting the formula")
	}
	if !s.Value(0) {
		t.Error("model does not satisfy the formula")
	}
}

// TestSolveContextPreCancelled: an already-cancelled context aborts
// before any search.
func TestSolveContextPreCancelled(t *testing.T) {
	s := NewSolver(1)
	s.AddClause(Pos(0), Neg(0))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SolveContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The same solver still decides with a live context.
	if ok, err := s.SolveContext(context.Background()); !ok || err != nil {
		t.Fatalf("post-cancel solve: ok=%v err=%v", ok, err)
	}
}

// TestSolveContextDeadline: an expired deadline aborts a long search
// promptly with DeadlineExceeded.
func TestSolveContextDeadline(t *testing.T) {
	// PHP(10,9) is exponentially hard for CDCL without symmetry breaking.
	const pigeons, holes = 10, 9
	s := NewSolver(pigeons * holes)
	v := func(p, h int) int { return p*holes + h }
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = Pos(v(p, h))
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(Neg(v(p1, h)), Neg(v(p2, h)))
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.SolveContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("abort took %v, checkpoints not honoured", elapsed)
	}
}

// TestSolveContextAbortAccounting: every aborted SolveContext call is
// tallied in Stats.Aborts — the racing synthesis sweep cancels losing
// searches routinely, and their burned work must stay visible — while
// completed calls leave the counter untouched.
func TestSolveContextAbortAccounting(t *testing.T) {
	s := NewSolver(1)
	s.AddClause(Pos(0))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SolveContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Stats.Aborts != 1 {
		t.Errorf("Aborts = %d after one aborted call, want 1", s.Stats.Aborts)
	}
	if _, err := s.SolveContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("second abort: err = %v", err)
	}
	if s.Stats.Aborts != 2 {
		t.Errorf("Aborts = %d after two aborted calls, want 2", s.Stats.Aborts)
	}
	if ok, err := s.SolveContext(context.Background()); !ok || err != nil {
		t.Fatalf("live solve: ok=%v err=%v", ok, err)
	}
	if s.Stats.Aborts != 2 {
		t.Errorf("completed call changed Aborts to %d", s.Stats.Aborts)
	}
}
