// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver with two-literal watching, first-UIP conflict analysis, VSIDS
// variable activities, phase saving and Luby restarts. §7 of the paper
// reduces the synthesis of normal-form algorithms to constraint
// satisfaction ("finding a proper 4-colouring of the neighbourhood graph
// can be done with modern SAT solvers in a matter of seconds"); this
// package is that solver, and it is also used to decide solvability of
// LCL tilings on small tori (the Θ(n) brute-force baseline).
package sat

import (
	"context"
	"fmt"
)

// Lit is a literal: variable index v with sign, encoded as 2v (positive)
// or 2v+1 (negative).
type Lit int32

// Pos returns the positive literal of variable v.
func Pos(v int) Lit { return Lit(2 * v) }

// Neg returns the negative literal of variable v.
func Neg(v int) Lit { return Lit(2*v + 1) }

// Var returns the variable of the literal.
func (l Lit) Var() int { return int(l) >> 1 }

// Positive reports whether the literal is positive.
func (l Lit) Positive() bool { return l&1 == 0 }

// Not returns the negation of the literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String implements fmt.Stringer.
func (l Lit) String() string {
	if l.Positive() {
		return fmt.Sprintf("x%d", l.Var())
	}
	return fmt.Sprintf("¬x%d", l.Var())
}

const (
	lUndef int8 = 0
	lTrue  int8 = 1
	lFalse int8 = -1
)

// Solver is a CDCL SAT solver. Create with NewSolver, add clauses with
// AddClause, then call Solve.
type Solver struct {
	nVars   int
	clauses [][]Lit
	watches [][]int // for each literal, clause indices watching it

	assign []int8 // per variable
	level  []int
	reason []int // clause index, or -1 for decisions/unassigned
	trail  []Lit
	lim    []int // decision-level boundaries in trail
	qhead  int
	unsat  bool // formula already unsatisfiable at level 0
	phase  []bool
	seen   []bool

	activity []float64
	varInc   float64
	heap     varHeap

	Stats Stats
}

// Stats collects solver statistics for reporting.
type Stats struct {
	Decisions  int
	Conflicts  int
	Propagated int
	Learned    int
	Restarts   int
	// Aborts counts SolveContext calls that returned with the context's
	// error instead of an answer. Racing searches (the engine's parallel
	// synthesis sweep cancels the losers once a winner is found) make
	// aborted work a first-class outcome, and this is its account: the
	// other counters still record everything the aborted search burned.
	Aborts int
}

// NewSolver creates a solver over nVars variables (indices 0..nVars-1).
func NewSolver(nVars int) *Solver {
	s := &Solver{
		nVars:    nVars,
		watches:  make([][]int, 2*nVars),
		assign:   make([]int8, nVars),
		level:    make([]int, nVars),
		reason:   make([]int, nVars),
		phase:    make([]bool, nVars),
		seen:     make([]bool, nVars),
		activity: make([]float64, nVars),
		varInc:   1,
	}
	for i := range s.reason {
		s.reason[i] = -1
	}
	s.heap.init(s, nVars)
	return s
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return s.nVars }

// NumClauses returns the number of problem clauses added (not counting
// learned clauses).
func (s *Solver) NumClauses() int { return len(s.clauses) - s.Stats.Learned }

// value returns the current value of a literal.
func (s *Solver) value(l Lit) int8 {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Positive() {
		return v
	}
	return -v
}

// AddClause adds a clause. Duplicate literals are removed and tautologies
// are dropped. Must be called before Solve. An empty (or all-false after
// simplification at level 0) clause makes the formula unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) {
	if s.unsat {
		return
	}
	if len(s.trail) > 0 && len(s.lim) > 0 {
		panic("sat: AddClause after search started")
	}
	// Simplify: dedupe, drop tautologies and false-at-level-0 literals.
	simplified := make([]Lit, 0, len(lits))
	seen := make(map[Lit]bool, len(lits))
	for _, l := range lits {
		if l.Var() < 0 || l.Var() >= s.nVars {
			panic(fmt.Sprintf("sat: literal %v out of range", l))
		}
		switch {
		case seen[l]:
			continue
		case seen[l.Not()]:
			return // tautology
		case s.value(l) == lTrue:
			return // already satisfied at level 0
		case s.value(l) == lFalse:
			continue // already false at level 0
		}
		seen[l] = true
		simplified = append(simplified, l)
	}
	switch len(simplified) {
	case 0:
		s.unsat = true
	case 1:
		if !s.enqueue(simplified[0], -1) {
			s.unsat = true
		} else if s.propagate() >= 0 {
			s.unsat = true
		}
	default:
		s.attachClause(simplified)
	}
}

func (s *Solver) attachClause(lits []Lit) int {
	idx := len(s.clauses)
	s.clauses = append(s.clauses, lits)
	s.watches[lits[0]] = append(s.watches[lits[0]], idx)
	s.watches[lits[1]] = append(s.watches[lits[1]], idx)
	return idx
}

// enqueue assigns literal l to true with the given reason clause; it
// returns false on an immediate conflict with an existing assignment.
func (s *Solver) enqueue(l Lit, reason int) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Positive() {
		s.assign[v] = lTrue
	} else {
		s.assign[v] = lFalse
	}
	s.level[v] = len(s.lim)
	s.reason[v] = reason
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; it returns the index of a
// conflicting clause, or -1.
func (s *Solver) propagate() int {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		falsified := p.Not()
		ws := s.watches[falsified]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			ci := ws[wi]
			c := s.clauses[ci]
			// Ensure the falsified literal is at position 1.
			if c[0] == falsified {
				c[0], c[1] = c[1], c[0]
			}
			// Clause satisfied by first watch?
			if s.value(c[0]) == lTrue {
				kept = append(kept, ci)
				continue
			}
			// Find a new literal to watch.
			moved := false
			for k := 2; k < len(c); k++ {
				if s.value(c[k]) != lFalse {
					c[1], c[k] = c[k], c[1]
					s.watches[c[1]] = append(s.watches[c[1]], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Unit or conflict.
			kept = append(kept, ci)
			if !s.enqueue(c[0], ci) {
				// Conflict: keep remaining watches and bail out.
				kept = append(kept, ws[wi+1:]...)
				s.watches[falsified] = kept
				s.qhead = len(s.trail)
				return ci
			}
			s.Stats.Propagated++
		}
		s.watches[falsified] = kept
	}
	return -1
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first) and the backjump level.
func (s *Solver) analyze(confl int) ([]Lit, int) {
	learnt := []Lit{0} // placeholder for the asserting literal
	counter := 0
	var p Lit = -1
	index := len(s.trail) - 1
	curLevel := len(s.lim)

	for {
		c := s.clauses[confl]
		start := 0
		if p != -1 {
			start = 1 // c[0] is the propagated literal p
		}
		for _, q := range c[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] == curLevel {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select the next literal on the trail to resolve on.
		for !s.seen[s.trail[index].Var()] {
			index--
		}
		p = s.trail[index]
		index--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	backLevel := 0
	for i := 1; i < len(learnt); i++ {
		if l := s.level[learnt[i].Var()]; l > backLevel {
			backLevel = l
		}
	}
	// Put a literal of the backjump level at position 1 so the watches are
	// correct after backjumping.
	for i := 1; i < len(learnt); i++ {
		if s.level[learnt[i].Var()] == backLevel {
			learnt[1], learnt[i] = learnt[i], learnt[1]
			break
		}
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	return learnt, backLevel
}

// backtrack undoes assignments above the given decision level.
func (s *Solver) backtrack(level int) {
	if len(s.lim) <= level {
		return
	}
	bound := s.lim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = -1
		s.heap.push(v)
	}
	s.trail = s.trail[:bound]
	s.lim = s.lim[:level]
	s.qhead = bound
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) decayActivities() {
	s.varInc /= 0.95
}

// pickBranchVar returns the unassigned variable with the highest activity,
// or -1 if all variables are assigned.
func (s *Solver) pickBranchVar() int {
	for s.heap.size > 0 {
		v := s.heap.pop()
		if s.assign[v] == lUndef {
			return v
		}
	}
	return -1
}

// luby returns the i-th element (1-based) of the Luby restart sequence.
func luby(i int) int {
	for k := 1; ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve decides satisfiability. When it returns true, Value reports a
// satisfying assignment. It is SolveContext with a background context
// (never interrupted).
func (s *Solver) Solve() bool {
	ok, _ := s.SolveContext(context.Background())
	return ok
}

// ctxCheckInterval is how many search-loop iterations pass between
// ctx.Err() checkpoints. Each iteration performs at least one unit
// propagation pass, so even on hard instances a cancel or deadline is
// observed within a fraction of a millisecond while the check itself
// stays off the hot path.
const ctxCheckInterval = 1024

// SolveContext decides satisfiability under a context: the CDCL search
// loop checks ctx.Err() every ctxCheckInterval iterations (and at every
// restart), so a cancelled context or an expired deadline aborts an
// in-flight search promptly with the context's error. The solver is left
// in an unspecified (but non-corrupt) search state after an abort; it is
// safe to call SolveContext again with a live context to resume deciding
// the same formula. Every aborted call is tallied in Stats.Aborts.
func (s *Solver) SolveContext(ctx context.Context) (bool, error) {
	ok, err := s.solveContext(ctx)
	if err != nil {
		s.Stats.Aborts++
	}
	return ok, err
}

func (s *Solver) solveContext(ctx context.Context) (bool, error) {
	if s.unsat {
		return false, nil
	}
	// A previous aborted call may have left decisions on the trail; drop
	// to level 0 so the top-level propagation below only ever proves
	// formula-level unsatisfiability, not refutation of stale decisions.
	s.backtrack(0)
	if confl := s.propagate(); confl >= 0 {
		s.unsat = true
		return false, nil
	}
	restart := 1
	for {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		budget := 256 * luby(restart)
		res, err := s.search(ctx, budget)
		if err != nil {
			return false, err
		}
		switch res {
		case lTrue:
			return true, nil
		case lFalse:
			s.unsat = true
			return false, nil
		}
		s.backtrack(0)
		s.Stats.Restarts++
		restart++
	}
}

// search runs CDCL until a model is found (lTrue), unsatisfiability is
// proven (lFalse), the conflict budget is exhausted (lUndef), or the
// context is cancelled (non-nil error).
func (s *Solver) search(ctx context.Context, budget int) (int8, error) {
	conflicts := 0
	steps := 0
	for {
		steps++
		if steps%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return lUndef, err
			}
		}
		confl := s.propagate()
		if confl >= 0 {
			conflicts++
			s.Stats.Conflicts++
			if len(s.lim) == 0 {
				return lFalse, nil
			}
			learnt, backLevel := s.analyze(confl)
			s.backtrack(backLevel)
			if len(learnt) == 1 {
				if !s.enqueue(learnt[0], -1) {
					return lFalse, nil
				}
			} else {
				ci := s.attachClause(learnt)
				s.Stats.Learned++
				if !s.enqueue(learnt[0], ci) {
					return lFalse, nil
				}
			}
			s.decayActivities()
			if conflicts >= budget {
				return lUndef, nil
			}
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			return lTrue, nil // all variables assigned, no conflict
		}
		s.Stats.Decisions++
		s.lim = append(s.lim, len(s.trail))
		l := Pos(v)
		if !s.phase[v] {
			l = Neg(v)
		}
		if !s.enqueue(l, -1) {
			panic("sat: decision on assigned variable")
		}
	}
}

// Value returns the value of variable v in the model found by the last
// successful Solve. Unconstrained variables report false.
func (s *Solver) Value(v int) bool { return s.assign[v] == lTrue }

// --- activity-ordered variable heap --------------------------------------

type varHeap struct {
	s    *Solver
	heap []int // variable indices
	pos  []int // position in heap, or -1
	size int
}

func (h *varHeap) init(s *Solver, n int) {
	h.s = s
	h.heap = make([]int, n)
	h.pos = make([]int, n)
	for i := 0; i < n; i++ {
		h.heap[i] = i
		h.pos[i] = i
	}
	h.size = n
}

func (h *varHeap) less(a, b int) bool {
	return h.s.activity[h.heap[a]] > h.s.activity[h.heap[b]]
}

func (h *varHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < h.size && h.less(l, smallest) {
			smallest = l
		}
		if r < h.size && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *varHeap) pop() int {
	v := h.heap[0]
	h.swap(0, h.size-1)
	h.size--
	h.pos[v] = -1
	h.down(0)
	return v
}

func (h *varHeap) push(v int) {
	if h.pos[v] >= 0 && h.pos[v] < h.size {
		return
	}
	h.heap[h.size] = v
	h.pos[v] = h.size
	h.size++
	h.up(h.size - 1)
}

func (h *varHeap) update(v int) {
	if p := h.pos[v]; p >= 0 && p < h.size {
		h.up(p)
	}
}
