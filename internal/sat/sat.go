// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver with two-literal watching, first-UIP conflict analysis, VSIDS
// variable activities, phase saving and Luby restarts. §7 of the paper
// reduces the synthesis of normal-form algorithms to constraint
// satisfaction ("finding a proper 4-colouring of the neighbourhood graph
// can be done with modern SAT solvers in a matter of seconds"); this
// package is that solver, and it is also used to decide solvability of
// LCL tilings on small tori (the Θ(n) brute-force baseline).
//
// The hot path is tuned for the tile CSP's clause mix, which is
// dominated by binary forbidden-pair clauses: binary clauses live in a
// dedicated implication list (the other literal is stored inline, no
// clause dereference), long-clause watches carry a blocker literal, and
// learned clauses are scored by LBD and activity so the database can be
// periodically reduced. Clauses may be added after a search has run, and
// SolveAssuming decides satisfiability under assumption literals without
// committing them, so one solver can be reused incrementally across a
// sweep of related formulas.
package sat

import (
	"context"
	"fmt"
	"sort"
)

// Lit is a literal: variable index v with sign, encoded as 2v (positive)
// or 2v+1 (negative).
type Lit int32

// Pos returns the positive literal of variable v.
func Pos(v int) Lit { return Lit(2 * v) }

// Neg returns the negative literal of variable v.
func Neg(v int) Lit { return Lit(2*v + 1) }

// Var returns the variable of the literal.
func (l Lit) Var() int { return int(l) >> 1 }

// Positive reports whether the literal is positive.
func (l Lit) Positive() bool { return l&1 == 0 }

// Not returns the negation of the literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String implements fmt.Stringer.
func (l Lit) String() string {
	if l.Positive() {
		return fmt.Sprintf("x%d", l.Var())
	}
	return fmt.Sprintf("¬x%d", l.Var())
}

const (
	lUndef int8 = 0
	lTrue  int8 = 1
	lFalse int8 = -1
)

// Reason and conflict sentinels. Non-negative values are clause indices.
const (
	reasonNone = -1 // decision or unassigned
	reasonBin  = -2 // binary clause; the other literal is in reasonLit
	conflNone  = -1 // no conflict
	conflBin   = -2 // conflict in a binary clause; literals in binConfl
)

// clause is a stored clause of length >= 3. Binary clauses are kept
// inline in the solver's implication lists and never allocate a clause.
type clause struct {
	lits   []Lit
	act    float64 // activity (learnt clauses only)
	lbd    int32   // literal block distance at learn time
	learnt bool
}

// watcher is a watch-list entry for a long clause: the clause reference
// plus a blocker literal (some other literal of the clause). If the
// blocker is true the clause is satisfied and need not be dereferenced.
type watcher struct {
	cref    int32
	blocker Lit
}

// Solver is a CDCL SAT solver. Create with NewSolver, add clauses with
// AddClause, then call Solve, SolveContext or SolveAssuming. The
// variable space can be grown between solves with AddVars, and AddClause
// may be called after a search (the solver transparently drops back to
// decision level 0).
type Solver struct {
	nVars   int
	clauses []clause    // long clauses; deleted slots are recycled via free
	free    []int32     // recycled clause slots
	watches [][]watcher // for each literal, long-clause watches
	bins    [][]Lit     // for each literal p, literals implied when p is true

	numProblem int // live problem clauses of length >= 2
	numLearnts int // live learnt clauses stored in the clause database

	assign    []int8 // per variable
	level     []int32
	reason    []int32 // clause index, reasonNone, or reasonBin
	reasonLit []Lit   // other literal of a binary reason
	trail     []Lit
	lim       []int // decision-level boundaries in trail
	qhead     int
	unsat     bool // formula already unsatisfiable at level 0
	phase     []bool
	seen      []bool

	activity []float64
	varInc   float64
	heap     varHeap

	claInc     float64
	maxLearnts int // reduceDB threshold; initialized on first solve

	binConfl  [2]Lit   // scratch conflict clause for binary conflicts
	tmpReason [1]Lit   // scratch reason slice for binary reasons in analyze
	addSeen   []int8   // per-literal scratch for AddClause deduplication
	addBuf    []Lit    // reusable AddClause simplification buffer
	minClear  []Lit    // seen-flag cleanup list for clause minimization
	minBudget int      // antecedent-visit budget per minimization pass
	lbdSeen   []uint64 // per-level stamp for LBD computation
	lbdStamp  uint64
	reduceBuf []int32 // reusable reduceDB candidate buffer

	Stats Stats
}

// Stats collects solver statistics for reporting.
type Stats struct {
	Decisions  int
	Conflicts  int
	Propagated int
	Learned    int
	Restarts   int
	// Aborts counts SolveContext calls that returned with the context's
	// error instead of an answer. Racing searches (the engine's parallel
	// synthesis sweep cancels the losers once a winner is found) make
	// aborted work a first-class outcome, and this is its account: the
	// other counters still record everything the aborted search burned.
	Aborts int
	// Minimized counts literals removed from learned clauses by
	// self-subsumption over reason clauses.
	Minimized int
	// Reductions counts learned-clause database reduction passes;
	// Deleted counts the clauses those passes removed.
	Reductions int
	Deleted    int
}

// NewSolver creates a solver over nVars variables (indices 0..nVars-1).
func NewSolver(nVars int) *Solver {
	s := &Solver{varInc: 1, claInc: 1}
	s.heap.init(s)
	s.AddVars(nVars)
	return s
}

// AddVars grows the variable space by n fresh variables and returns the
// index of the first new variable. It may be called between solves,
// which is how incremental encodings extend one solver across a sweep of
// related formulas.
func (s *Solver) AddVars(n int) int {
	base := s.nVars
	s.nVars += n
	s.watches = append(s.watches, make([][]watcher, 2*n)...)
	s.bins = append(s.bins, make([][]Lit, 2*n)...)
	s.addSeen = append(s.addSeen, make([]int8, 2*n)...)
	s.assign = append(s.assign, make([]int8, n)...)
	s.level = append(s.level, make([]int32, n)...)
	s.phase = append(s.phase, make([]bool, n)...)
	s.seen = append(s.seen, make([]bool, n)...)
	s.activity = append(s.activity, make([]float64, n)...)
	for len(s.lbdSeen) < s.nVars+1 {
		s.lbdSeen = append(s.lbdSeen, 0)
	}
	for i := 0; i < n; i++ {
		s.reason = append(s.reason, reasonNone)
		s.reasonLit = append(s.reasonLit, 0)
	}
	s.heap.grow(s.nVars)
	for v := base; v < s.nVars; v++ {
		s.heap.push(v)
	}
	return base
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return s.nVars }

// NumClauses returns the number of live problem clauses of length >= 2
// (units become assignments, learned clauses are not counted, and
// learned-clause deletion does not disturb the count).
func (s *Solver) NumClauses() int { return s.numProblem }

// value returns the current value of a literal.
func (s *Solver) value(l Lit) int8 {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Positive() {
		return v
	}
	return -v
}

// AddClause adds a clause. Duplicate literals are removed and tautologies
// are dropped. It may be called before or after a search: if a search has
// run, the solver first backtracks to decision level 0 (learned clauses
// and activities are kept). An empty (or all-false after simplification
// at level 0) clause makes the formula unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) {
	if s.unsat {
		return
	}
	// Simplification below must only see level-0 facts.
	s.backtrack(0)
	simplified := s.addBuf[:0]
	taut := false
	for _, l := range lits {
		if l.Var() < 0 || l.Var() >= s.nVars {
			panic(fmt.Sprintf("sat: literal %v out of range", l))
		}
		if s.addSeen[l] != 0 {
			continue
		}
		if s.addSeen[l.Not()] != 0 || s.value(l) == lTrue {
			taut = true // tautology or already satisfied at level 0
			break
		}
		if s.value(l) == lFalse {
			continue // already false at level 0
		}
		s.addSeen[l] = 1
		simplified = append(simplified, l)
	}
	for _, l := range simplified {
		s.addSeen[l] = 0
	}
	s.addBuf = simplified[:0]
	if taut {
		return
	}
	switch len(simplified) {
	case 0:
		s.unsat = true
	case 1:
		if !s.enqueue(simplified[0], reasonNone) {
			s.unsat = true
		} else if s.propagate() != conflNone {
			s.unsat = true
		}
	case 2:
		s.numProblem++
		s.addBinary(simplified[0], simplified[1])
	default:
		s.numProblem++
		cl := make([]Lit, len(simplified))
		copy(cl, simplified)
		s.attachClause(cl, false)
	}
}

// addBinary records the binary clause (a ∨ b) in the implication lists.
// Lists start at capacity 8: encodings in this repo attach several
// binaries per literal, and skipping the 1→2→4 growth steps measurably
// cuts encoding time.
func (s *Solver) addBinary(a, b Lit) {
	s.appendBin(a.Not(), b)
	s.appendBin(b.Not(), a)
}

func (s *Solver) appendBin(watch, imp Lit) {
	w := s.bins[watch]
	if cap(w) == 0 {
		w = make([]Lit, 0, 8)
	}
	s.bins[watch] = append(w, imp)
}

// attachClause stores a clause of length >= 3 and watches its first two
// literals. Deleted slots are recycled before the arena grows.
func (s *Solver) attachClause(lits []Lit, learnt bool) int32 {
	var ci int32
	if n := len(s.free); n > 0 {
		ci = s.free[n-1]
		s.free = s.free[:n-1]
		s.clauses[ci] = clause{lits: lits, learnt: learnt}
	} else {
		ci = int32(len(s.clauses))
		s.clauses = append(s.clauses, clause{lits: lits, learnt: learnt})
	}
	s.watches[lits[0]] = append(s.watches[lits[0]], watcher{ci, lits[1]})
	s.watches[lits[1]] = append(s.watches[lits[1]], watcher{ci, lits[0]})
	return ci
}

// detachClause removes the clause's two watch entries and recycles its
// slot.
func (s *Solver) detachClause(ci int32) {
	c := s.clauses[ci].lits
	s.removeWatch(c[0], ci)
	s.removeWatch(c[1], ci)
	s.clauses[ci] = clause{}
	s.free = append(s.free, ci)
}

func (s *Solver) removeWatch(l Lit, ci int32) {
	ws := s.watches[l]
	for i := range ws {
		if ws[i].cref == ci {
			ws[i] = ws[len(ws)-1]
			s.watches[l] = ws[:len(ws)-1]
			return
		}
	}
}

// enqueue assigns literal l to true with the given reason clause; it
// returns false on an immediate conflict with an existing assignment.
func (s *Solver) enqueue(l Lit, reason int32) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Positive() {
		s.assign[v] = lTrue
	} else {
		s.assign[v] = lFalse
	}
	s.level[v] = int32(len(s.lim))
	s.reason[v] = reason
	s.trail = append(s.trail, l)
	return true
}

// enqueueBin assigns l to true with a binary reason clause (l ∨ other).
func (s *Solver) enqueueBin(l, other Lit) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Positive() {
		s.assign[v] = lTrue
	} else {
		s.assign[v] = lFalse
	}
	s.level[v] = int32(len(s.lim))
	s.reason[v] = reasonBin
	s.reasonLit[v] = other
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; it returns the index of a
// conflicting clause, conflBin for a conflict in a binary clause (the
// literals are left in binConfl), or conflNone.
func (s *Solver) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		// Binary implications first: the other literal is inline, no
		// clause dereference.
		for _, imp := range s.bins[p] {
			switch s.value(imp) {
			case lTrue:
			case lFalse:
				s.binConfl[0], s.binConfl[1] = imp, p.Not()
				s.qhead = len(s.trail)
				return conflBin
			default:
				s.enqueueBin(imp, p.Not())
				s.Stats.Propagated++
			}
		}
		falsified := p.Not()
		ws := s.watches[falsified]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			// Blocker satisfied: the clause is true, skip the deref.
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := s.clauses[w.cref].lits
			// Ensure the falsified literal is at position 1.
			if c[0] == falsified {
				c[0], c[1] = c[1], c[0]
			}
			first := c[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{w.cref, first})
				continue
			}
			// Find a new literal to watch.
			moved := false
			for k := 2; k < len(c); k++ {
				if s.value(c[k]) != lFalse {
					c[1], c[k] = c[k], c[1]
					s.watches[c[1]] = append(s.watches[c[1]], watcher{w.cref, first})
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Unit or conflict.
			kept = append(kept, w)
			if !s.enqueue(first, w.cref) {
				// Conflict: keep remaining watches and bail out.
				kept = append(kept, ws[wi+1:]...)
				s.watches[falsified] = kept
				s.qhead = len(s.trail)
				return w.cref
			}
			s.Stats.Propagated++
		}
		s.watches[falsified] = kept
	}
	return conflNone
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first, minimized by self-subsumption over
// reason clauses) and the backjump level.
func (s *Solver) analyze(confl int32) ([]Lit, int) {
	learnt := []Lit{0} // placeholder for the asserting literal
	counter := 0
	var p Lit = -1
	index := len(s.trail) - 1
	curLevel := int32(len(s.lim))

	for {
		var cl []Lit
		if confl == conflBin {
			if p == -1 {
				cl = s.binConfl[:]
			} else {
				s.tmpReason[0] = s.reasonLit[p.Var()]
				cl = s.tmpReason[:]
			}
		} else {
			c := &s.clauses[confl]
			if c.learnt {
				s.bumpClause(confl)
			}
			cl = c.lits
			if p != -1 {
				cl = cl[1:] // lits[0] is the propagated literal p
			}
		}
		for _, q := range cl {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] == curLevel {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select the next literal on the trail to resolve on.
		for !s.seen[s.trail[index].Var()] {
			index--
		}
		p = s.trail[index]
		index--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	// seen is still set exactly for learnt[1:]; minimization relies on it
	// ("already in the clause" antecedents are free), so record the list
	// and clear the flags only after minimizing.
	s.minClear = append(s.minClear[:0], learnt[1:]...)
	var abstract uint32
	for _, l := range learnt[1:] {
		abstract |= 1 << (uint32(s.level[l.Var()]) & 31)
	}
	s.minBudget = 1000
	j := 1
	for i := 1; i < len(learnt); i++ {
		if s.litRedundant(learnt[i], abstract) {
			s.Stats.Minimized++
		} else {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]

	backLevel := int32(0)
	for i := 1; i < len(learnt); i++ {
		if l := s.level[learnt[i].Var()]; l > backLevel {
			backLevel = l
		}
	}
	// Put a literal of the backjump level at position 1 so the watches are
	// correct after backjumping.
	for i := 1; i < len(learnt); i++ {
		if s.level[learnt[i].Var()] == backLevel {
			learnt[1], learnt[i] = learnt[i], learnt[1]
			break
		}
	}
	for _, l := range s.minClear {
		s.seen[l.Var()] = false
	}
	return learnt, int(backLevel)
}

// litRedundant reports whether learnt literal l is implied by the rest
// of the learnt clause through the implication graph, in which case
// resolving it away is self-subsumption and it can be dropped. The walk
// is budgeted; running out of budget conservatively keeps the literal.
func (s *Solver) litRedundant(l Lit, abstract uint32) bool {
	v := l.Var()
	r := s.reason[v]
	if r == reasonNone {
		return false
	}
	if s.minBudget <= 0 {
		return false
	}
	s.minBudget--
	if r == reasonBin {
		return s.redundantAntecedent(s.reasonLit[v], abstract)
	}
	for _, q := range s.clauses[r].lits[1:] { // lits[0] is ¬l on the trail
		if !s.redundantAntecedent(q, abstract) {
			return false
		}
	}
	return true
}

func (s *Solver) redundantAntecedent(q Lit, abstract uint32) bool {
	w := q.Var()
	if s.level[w] == 0 || s.seen[w] {
		return true // level-0 fact, or already in the learnt clause
	}
	if 1<<(uint32(s.level[w])&31)&abstract == 0 {
		return false // a level no clause literal shares: cannot be absorbed
	}
	return s.litRedundant(q, abstract)
}

// backtrack undoes assignments above the given decision level.
func (s *Solver) backtrack(level int) {
	if len(s.lim) <= level {
		return
	}
	bound := s.lim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = reasonNone
		s.heap.push(v)
	}
	s.trail = s.trail[:bound]
	s.lim = s.lim[:level]
	s.qhead = bound
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) decayActivities() {
	s.varInc /= 0.95
	s.claInc /= 0.999
}

func (s *Solver) bumpClause(ci int32) {
	c := &s.clauses[ci]
	c.act += s.claInc
	if c.act > 1e20 {
		for i := range s.clauses {
			if s.clauses[i].learnt && s.clauses[i].lits != nil {
				s.clauses[i].act *= 1e-20
			}
		}
		s.claInc *= 1e-20
	}
}

// computeLBD returns the number of distinct non-zero decision levels
// among the clause's literals (its "glue").
func (s *Solver) computeLBD(lits []Lit) int32 {
	s.lbdStamp++
	var n int32
	for _, l := range lits {
		lv := s.level[l.Var()]
		if lv == 0 {
			continue
		}
		if s.lbdSeen[lv] != s.lbdStamp {
			s.lbdSeen[lv] = s.lbdStamp
			n++
		}
	}
	return n
}

// locked reports whether the clause is the reason of its first literal's
// assignment and therefore must not be deleted.
func (s *Solver) locked(ci int32) bool {
	c := s.clauses[ci].lits
	if len(c) == 0 {
		return false
	}
	v := c[0].Var()
	return s.assign[v] != lUndef && s.reason[v] == ci
}

// reduceDB deletes roughly half of the stored learnt clauses, preferring
// high LBD and low activity. Glue clauses (LBD <= 2) and clauses that are
// currently the reason for an assignment are always kept.
func (s *Solver) reduceDB() {
	cands := s.reduceBuf[:0]
	for ci := range s.clauses {
		c := &s.clauses[ci]
		if !c.learnt || c.lits == nil || c.lbd <= 2 || s.locked(int32(ci)) {
			continue
		}
		cands = append(cands, int32(ci))
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := &s.clauses[cands[i]], &s.clauses[cands[j]]
		if a.lbd != b.lbd {
			return a.lbd > b.lbd
		}
		return a.act < b.act
	})
	for _, ci := range cands[:len(cands)/2] {
		s.detachClause(ci)
		s.numLearnts--
		s.Stats.Deleted++
	}
	s.reduceBuf = cands[:0]
	s.Stats.Reductions++
	// Let the database grow past the survivors before the next pass.
	next := s.maxLearnts + s.maxLearnts/10
	if m := s.numLearnts + s.numLearnts/10 + 100; m > next {
		next = m
	}
	s.maxLearnts = next
}

// pickBranchVar returns the unassigned variable with the highest activity,
// or -1 if all variables are assigned.
func (s *Solver) pickBranchVar() int {
	for s.heap.size > 0 {
		v := s.heap.pop()
		if s.assign[v] == lUndef {
			return v
		}
	}
	return -1
}

// luby returns the i-th element (1-based) of the Luby restart sequence.
func luby(i int) int {
	for k := 1; ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve decides satisfiability. When it returns true, Value reports a
// satisfying assignment. It is SolveContext with a background context
// (never interrupted).
func (s *Solver) Solve() bool {
	ok, _ := s.SolveContext(context.Background())
	return ok
}

// ctxCheckInterval is how many search-loop iterations pass between
// ctx.Err() checkpoints. Each iteration performs at least one unit
// propagation pass, so even on hard instances a cancel or deadline is
// observed within a fraction of a millisecond while the check itself
// stays off the hot path.
const ctxCheckInterval = 1024

// SolveContext decides satisfiability under a context: the CDCL search
// loop checks ctx.Err() every ctxCheckInterval iterations (and at every
// restart), so a cancelled context or an expired deadline aborts an
// in-flight search promptly with the context's error. The solver is left
// in an unspecified (but non-corrupt) search state after an abort; it is
// safe to call SolveContext again with a live context to resume deciding
// the same formula. Every aborted call is tallied in Stats.Aborts.
func (s *Solver) SolveContext(ctx context.Context) (bool, error) {
	return s.SolveAssuming(ctx)
}

// SolveAssuming decides satisfiability under the given assumption
// literals, treated as forced first decisions. It returns (false, nil)
// when the formula is satisfiable but contradicts the assumptions; the
// solver is NOT marked unsatisfiable in that case and later calls with
// different assumptions see the same formula plus anything learned.
// Learned clauses never depend on the assumptions themselves, so they
// remain valid across calls — this is what makes an incremental sweep
// (solve, add clauses, solve again under new assumptions) cheap.
func (s *Solver) SolveAssuming(ctx context.Context, assumptions ...Lit) (bool, error) {
	ok, err := s.solveAssuming(ctx, assumptions)
	if err != nil {
		s.Stats.Aborts++
	}
	return ok, err
}

type searchStatus int8

const (
	statusUndef searchStatus = iota
	statusSAT
	statusUNSAT
	statusAssumpFalse
)

func (s *Solver) solveAssuming(ctx context.Context, assumps []Lit) (bool, error) {
	if s.unsat {
		return false, nil
	}
	for _, l := range assumps {
		if l.Var() < 0 || l.Var() >= s.nVars {
			panic(fmt.Sprintf("sat: assumption %v out of range", l))
		}
	}
	// A previous aborted call may have left decisions on the trail; drop
	// to level 0 so the top-level propagation below only ever proves
	// formula-level unsatisfiability, not refutation of stale decisions.
	s.backtrack(0)
	if s.propagate() != conflNone {
		s.unsat = true
		return false, nil
	}
	if s.maxLearnts <= 0 {
		s.maxLearnts = 4000 + s.numProblem/2
	}
	restart := 1
	for {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		budget := 256 * luby(restart)
		res, err := s.search(ctx, budget, assumps)
		if err != nil {
			return false, err
		}
		switch res {
		case statusSAT:
			return true, nil
		case statusUNSAT:
			s.unsat = true
			return false, nil
		case statusAssumpFalse:
			s.backtrack(0)
			return false, nil
		}
		s.backtrack(0)
		s.Stats.Restarts++
		restart++
	}
}

// search runs CDCL until a model is found, unsatisfiability is proven
// (with or without the assumptions), the conflict budget is exhausted
// (statusUndef), or the context is cancelled (non-nil error).
func (s *Solver) search(ctx context.Context, budget int, assumps []Lit) (searchStatus, error) {
	conflicts := 0
	steps := 0
	for {
		steps++
		if steps%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return statusUndef, err
			}
		}
		confl := s.propagate()
		if confl != conflNone {
			conflicts++
			s.Stats.Conflicts++
			if len(s.lim) == 0 {
				return statusUNSAT, nil
			}
			learnt, backLevel := s.analyze(confl)
			s.backtrack(backLevel)
			switch len(learnt) {
			case 1:
				if !s.enqueue(learnt[0], reasonNone) {
					return statusUNSAT, nil
				}
			case 2:
				s.addBinary(learnt[0], learnt[1])
				s.Stats.Learned++
				if !s.enqueueBin(learnt[0], learnt[1]) {
					return statusUNSAT, nil
				}
			default:
				cl := make([]Lit, len(learnt))
				copy(cl, learnt)
				ci := s.attachClause(cl, true)
				s.clauses[ci].lbd = s.computeLBD(cl)
				s.numLearnts++
				s.Stats.Learned++
				s.bumpClause(ci)
				if !s.enqueue(learnt[0], ci) {
					return statusUNSAT, nil
				}
			}
			s.decayActivities()
			if conflicts >= budget {
				return statusUndef, nil
			}
			continue
		}
		if s.numLearnts >= s.maxLearnts {
			s.reduceDB()
		}
		// Assumptions are consumed as forced decisions, one per level;
		// an already-true assumption still opens a (possibly empty)
		// level so the remaining ones line up.
		if len(s.lim) < len(assumps) {
			p := assumps[len(s.lim)]
			switch s.value(p) {
			case lTrue:
				s.lim = append(s.lim, len(s.trail))
			case lFalse:
				return statusAssumpFalse, nil
			default:
				s.Stats.Decisions++
				s.lim = append(s.lim, len(s.trail))
				s.enqueue(p, reasonNone)
			}
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			return statusSAT, nil // all variables assigned, no conflict
		}
		s.Stats.Decisions++
		s.lim = append(s.lim, len(s.trail))
		l := Pos(v)
		if !s.phase[v] {
			l = Neg(v)
		}
		if !s.enqueue(l, reasonNone) {
			panic("sat: decision on assigned variable")
		}
	}
}

// Value returns the value of variable v in the model found by the last
// successful Solve. Unconstrained variables report false.
func (s *Solver) Value(v int) bool { return s.assign[v] == lTrue }

// --- activity-ordered variable heap --------------------------------------

type varHeap struct {
	s    *Solver
	heap []int // variable indices
	pos  []int // position in heap, or -1
	size int
}

func (h *varHeap) init(s *Solver) {
	h.s = s
}

// grow extends the position table to cover variables below n.
func (h *varHeap) grow(n int) {
	for len(h.pos) < n {
		h.pos = append(h.pos, -1)
	}
}

func (h *varHeap) less(a, b int) bool {
	return h.s.activity[h.heap[a]] > h.s.activity[h.heap[b]]
}

func (h *varHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < h.size && h.less(l, smallest) {
			smallest = l
		}
		if r < h.size && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *varHeap) pop() int {
	v := h.heap[0]
	h.swap(0, h.size-1)
	h.size--
	h.pos[v] = -1
	h.down(0)
	return v
}

func (h *varHeap) push(v int) {
	if h.pos[v] >= 0 && h.pos[v] < h.size {
		return
	}
	if h.size < len(h.heap) {
		h.heap[h.size] = v
		h.pos[v] = h.size
	} else {
		h.heap = append(h.heap, v)
		h.pos[v] = len(h.heap) - 1
	}
	h.size++
	h.up(h.size - 1)
}

func (h *varHeap) update(v int) {
	if p := h.pos[v]; p >= 0 && p < h.size {
		h.up(p)
	}
}
