package vertexcolor

import (
	"testing"

	"lclgrid/internal/coloring"
	"lclgrid/internal/grid"
	"lclgrid/internal/lcl"
	"lclgrid/internal/local"
)

// TestFourColoring2D reproduces the d = 2 case of Theorem 4 via the §8
// algorithm: a proper 4-colouring of the torus in Θ(log* n) rounds.
// ell = 31 is the empirical scale at which the greedy radius conflict
// colouring always succeeds (the paper's worst-case constant is 6145).
func TestFourColoring2D(t *testing.T) {
	for _, n := range []int{128, 131} {
		g := grid.Square(n)
		ids := local.PermutedIDs(g.N(), int64(n))
		var rounds local.Rounds
		colors, err := Run(g, ids, 31, &rounds)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if ok, e := coloring.IsProperColoring(g, colors); !ok {
			t.Fatalf("n=%d: improper at %v", n, e)
		}
		for _, c := range colors {
			if c < 0 || c > 3 {
				t.Fatalf("colour %d outside palette", c)
			}
		}
		if err := lcl.VertexColoring(4, 2).Verify(g, colors); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rounds.Total() <= 0 {
			t.Error("rounds not accounted")
		}
	}
}

func TestRunAutoFindsEll(t *testing.T) {
	g := grid.Square(128)
	ids := local.PermutedIDs(g.N(), 9)
	colors, ell, err := RunAuto(g, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.VertexColoring(4, 2).Verify(g, colors); err != nil {
		t.Fatal(err)
	}
	t.Logf("RunAuto succeeded with ell=%d", ell)
}

// TestBorderCounts3D exercises the d = 3 generality of the decomposition
// machinery: one anchor's ball boundary contributes one border count per
// extremal dimension.
func TestBorderCounts3D(t *testing.T) {
	g := grid.MustNew(17, 17, 17)
	anchor := g.Index(8, 8, 8)
	counts := borderCounts(g, []int{anchor}, []int{5})
	// A face-centre node of the ball boundary has count 1, an edge-centre
	// 2, a corner 3, and interior/outside nodes 0.
	if c := counts[g.Index(8+5, 8, 8)]; c != 1 {
		t.Errorf("face centre count = %d, want 1", c)
	}
	if c := counts[g.Index(8+5, 8+5, 8)]; c != 2 {
		t.Errorf("edge centre count = %d, want 2", c)
	}
	if c := counts[g.Index(8+5, 8+5, 8+5)]; c != 3 {
		t.Errorf("corner count = %d, want 3", c)
	}
	if c := counts[anchor]; c != 0 {
		t.Errorf("anchor count = %d, want 0", c)
	}
	if c := counts[g.Index(8+4, 8, 8)]; c != 0 {
		t.Errorf("interior count = %d, want 0", c)
	}
}

func TestRejectsBadParameters(t *testing.T) {
	g := grid.Square(20)
	if _, err := Run(g, local.SequentialIDs(g.N()), 10, nil); err == nil {
		t.Error("expected error: torus too small for ell")
	}
	if _, err := Run(g, local.SequentialIDs(g.N()), 1, nil); err == nil {
		t.Error("expected error: ell too small")
	}
	c := grid.Cycle(50)
	if _, err := Run(c, local.SequentialIDs(50), 3, nil); err == nil {
		t.Error("expected error: 1-D torus")
	}
}
