// Package vertexcolor implements the 4-colouring algorithm of §8 of the
// paper for d-dimensional toroidal grids (Theorem 4): anchors from an
// MIS of the L∞ power G^[ℓ], a radius assignment r(v) ∈ (ℓ, 2ℓ) obtained
// by conflict colouring so that the bounding hyperplanes of the chosen
// L∞ balls are separated, a parity-of-border-count network decomposition
// into two parts whose components are contained in single balls, and a
// final 2-colouring of each component — giving 4 colours in Θ(log* n)
// rounds.
//
// The paper's worst-case constant ℓ = 1 + 12d·16^d (6145 for d = 2)
// exists only to make the greedy conflict colouring always succeed; the
// parameter is configurable here, every invariant is verified at runtime,
// and the caller can retry with a larger ℓ (see DESIGN.md).
package vertexcolor

import (
	"fmt"

	"lclgrid/internal/coloring"
	"lclgrid/internal/grid"
	"lclgrid/internal/local"
)

// anchorGraph exposes the conflict graph H over anchors: two anchors are
// adjacent when their radius-2ℓ balls can interact (L∞ distance at most
// 4ℓ+2, covering the +1 slack of condition (2)).
type anchorGraph struct {
	anchors []int
	adj     [][]int
}

func (h *anchorGraph) N() int                { return len(h.anchors) }
func (h *anchorGraph) Degree(v int) int      { return len(h.adj[v]) }
func (h *anchorGraph) Neighbor(v, i int) int { return h.adj[v][i] }

// Run executes the §8 algorithm with ball parameter ell (≥ 3) and returns
// a proper 4-colouring (values 0..3) with its round account. It fails if
// the radius conflict colouring runs out of candidates for this ell; per
// the paper, a (dimension-dependent) constant ℓ always suffices.
func Run(t *grid.Torus, ids []int, ell int, rounds *local.Rounds) ([]int, error) {
	d := t.Dim()
	if d < 2 {
		return nil, fmt.Errorf("vertexcolor: §8 needs d >= 2 dimensions")
	}
	if ell < 3 {
		return nil, fmt.Errorf("vertexcolor: ell must be >= 3")
	}
	for i := 0; i < d; i++ {
		if t.Side(i) < 4*ell+2 {
			return nil, fmt.Errorf("vertexcolor: side %d too small for ell=%d", t.Side(i), ell)
		}
	}
	if rounds == nil {
		rounds = &local.Rounds{}
	}

	// Step 1: anchors = MIS of G^[ell].
	inM := coloring.Anchors(t, ell, grid.LInf, ids, rounds)
	var anchors []int
	anchorIdx := make([]int, t.N())
	for v := range anchorIdx {
		anchorIdx[v] = -1
	}
	for v := 0; v < t.N(); v++ {
		if inM[v] {
			anchorIdx[v] = len(anchors)
			anchors = append(anchors, v)
		}
	}

	// Step 2: radius assignment by greedy conflict colouring over H.
	h := buildAnchorGraph(t, anchors, anchorIdx, 4*ell+2)
	radius, err := assignRadii(t, h, ids, ell, rounds)
	if err != nil {
		return nil, err
	}

	// Step 3: border counts and the parity decomposition.
	count := borderCounts(t, anchors, radius)

	// Step 4: 2-colour each component of each part. Components must lie
	// inside single balls (Lemma 8 et seq.), hence have bounded diameter;
	// they are grid patches, so bipartite.
	colors := twoColorParts(t, count, 4*ell)
	if colors == nil {
		return nil, fmt.Errorf("vertexcolor: a component is larger than its ball bound (ell=%d too small)", ell)
	}
	rounds.Add(2 * d * ell) // component BFS within bounded diameter
	if ok, e := coloring.IsProperColoring(t, colors); !ok {
		return nil, fmt.Errorf("vertexcolor: improper output at edge %v (ell=%d too small)", e, ell)
	}
	return colors, nil
}

// RunAuto retries Run with geometrically growing ell until it succeeds
// or the torus becomes too small for the next ell. Empirically ell ≈ 31
// suffices on 2-dimensional tori (the paper's worst-case constant is
// 1 + 12d·16^d = 6145).
func RunAuto(t *grid.Torus, ids []int, rounds *local.Rounds) ([]int, int, error) {
	var lastErr error
	for ell := 3; 4*ell+2 <= t.Side(0); ell = 2*ell + 1 {
		colors, err := Run(t, ids, ell, rounds)
		if err == nil {
			return colors, ell, nil
		}
		lastErr = err
	}
	return nil, 0, fmt.Errorf("vertexcolor: no ell succeeded: %w", lastErr)
}

func buildAnchorGraph(t *grid.Torus, anchors []int, anchorIdx []int, reach int) *anchorGraph {
	h := &anchorGraph{anchors: anchors, adj: make([][]int, len(anchors))}
	offs := t.BallOffsets(reach, grid.LInf)
	for i, v := range anchors {
		for _, off := range offs {
			u := t.ShiftVec(v, off)
			if j := anchorIdx[u]; j >= 0 {
				h.adj[i] = append(h.adj[i], j)
			}
		}
	}
	return h
}

// assignRadii gives every anchor a radius in (ell, 2ell) such that for
// H-adjacent anchors u, v the bounding hyperplanes are separated
// (condition (2) via the inequalities (3) of §8): for every dimension i
// and signs ε1, ε2, |(u_i + ε1 r(u)) - (v_i + ε2 r(v))| >= 2. Anchors
// choose greedily in the order of a proper colouring of H.
func assignRadii(t *grid.Torus, h *anchorGraph, ids []int, ell int, rounds *local.Rounds) ([]int, error) {
	na := h.N()
	radius := make([]int, na)
	for i := range radius {
		radius[i] = -1
	}
	if na == 0 {
		return radius, nil
	}
	hIDs := make([]int, na)
	for i, v := range h.anchors {
		hIDs[i] = ids[v]
	}
	var hr local.Rounds
	hcolors, m := coloring.LinialColor(h, hIDs, t.N(), &hr)
	// Simulating one H round on the torus costs about the H reach.
	rounds.AddSimulated(hr.Total()+m, (4*ell+2)*t.Dim())

	d := t.Dim()
	cu := make([]int, d)
	cv := make([]int, d)
	// Colour classes act in rounds; within a class choices are
	// independent (H-neighbours always differ in colour).
	buckets := make([][]int, m)
	for i, c := range hcolors {
		buckets[c] = append(buckets[c], i)
	}
	for _, bucket := range buckets {
		for _, i := range bucket {
			t.CoordsInto(h.anchors[i], cu)
			span := ell - 1
		candidates:
			for tt := 0; tt < span; tt++ {
				// Start at an anchor-dependent offset so nearby anchors
				// spread over the radius range instead of piling on ℓ+1.
				r := ell + 1 + (ids[h.anchors[i]]+tt)%span
				for ni := 0; ni < h.Degree(i); ni++ {
					j := h.Neighbor(i, ni)
					if radius[j] < 0 {
						continue
					}
					// Only pairs whose enlarged balls intersect are
					// constrained (property (2) of §8).
					if t.Dist(h.anchors[i], h.anchors[j], grid.LInf) > r+radius[j]+2 {
						continue
					}
					t.CoordsInto(h.anchors[j], cv)
					if hyperplanesClash(t, cu, cv, r, radius[j]) {
						continue candidates
					}
				}
				radius[i] = r
				break
			}
			if radius[i] < 0 {
				return nil, fmt.Errorf("vertexcolor: anchor %d has no conflict-free radius for ell=%d", h.anchors[i], ell)
			}
		}
	}
	return radius, nil
}

// hyperplanesClash reports whether the bounding hyperplanes of the two
// balls come within distance 1 in some dimension (violating §8 (3)).
func hyperplanesClash(t *grid.Torus, cu, cv []int, ru, rv int) bool {
	for i := range cu {
		side := t.Side(i)
		for _, e1 := range []int{-ru, ru} {
			for _, e2 := range []int{-rv, rv} {
				diff := coordGap(cu[i]+e1, cv[i]+e2, side)
				if diff < 2 {
					return true
				}
			}
		}
	}
	return false
}

func coordGap(a, b, side int) int {
	d := ((a-b)%side + side) % side
	if side-d < d {
		d = side - d
	}
	return d
}

// borderCounts computes count(v) = |{(i, u): v is on the i-th dimension
// border of anchor u}|.
func borderCounts(t *grid.Torus, anchors []int, radius []int) []int {
	count := make([]int, t.N())
	d := t.Dim()
	ca := make([]int, d)
	cv := make([]int, d)
	for ai, a := range anchors {
		r := radius[ai]
		t.CoordsInto(a, ca)
		// Enumerate the ball B∞(a, r) and mark its boundary nodes.
		var rec func(dim, v int, maxAbs int)
		rec = func(dim, v, maxAbs int) {
			if dim == d {
				if maxAbs == r {
					t.CoordsInto(v, cv)
					for i := 0; i < d; i++ {
						if coordGap(cv[i], ca[i], t.Side(i)) == r {
							count[v]++
						}
					}
				}
				return
			}
			for off := -r; off <= r; off++ {
				m := maxAbs
				if abs(off) > m {
					m = abs(off)
				}
				rec(dim+1, t.Move(v, dim, off), m)
			}
		}
		rec(0, a, 0)
	}
	return count
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// twoColorParts splits nodes into V1 (odd count) and V2 (even count) and
// 2-colours every connected component of each part by BFS parity, using
// palette {0,1} for V1 and {2,3} for V2. It returns nil if some
// component exceeds the diameter bound (signalling an invariant failure).
func twoColorParts(t *grid.Torus, count []int, maxDiameter int) []int {
	n := t.N()
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	part := func(v int) int { return count[v] % 2 }
	for v := 0; v < n; v++ {
		if colors[v] >= 0 {
			continue
		}
		base := 2
		if part(v) == 1 {
			base = 0
		}
		colors[v] = base
		queue := []int{v}
		depth := map[int]int{v: 0}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for p := 0; p < t.Degree(u); p++ {
				w := t.Neighbor(u, p)
				if part(w) != part(v) || colors[w] >= 0 {
					continue
				}
				depth[w] = depth[u] + 1
				if depth[w] > maxDiameter {
					return nil
				}
				colors[w] = base + depth[w]%2
				queue = append(queue, w)
			}
		}
	}
	return colors
}
