package orient

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"lclgrid/internal/core"
	"lclgrid/internal/grid"
	"lclgrid/internal/lcl"
	"lclgrid/internal/local"
)

// TestTheorem22Table checks the classifier on the cases Theorem 22 calls
// out explicitly.
func TestTheorem22Table(t *testing.T) {
	tests := []struct {
		x    []int
		want core.Class
	}{
		{[]int{2}, core.ClassO1},
		{[]int{0, 2, 4}, core.ClassO1},
		{[]int{0, 1, 2, 3, 4}, core.ClassO1},
		{[]int{1, 3, 4}, core.ClassLogStar},
		{[]int{0, 1, 3}, core.ClassLogStar},
		{[]int{0, 1, 3, 4}, core.ClassLogStar},
		{[]int{0, 3, 4}, core.ClassGlobal}, // Theorem 25
		{[]int{1, 3}, core.ClassGlobal},    // Lemma 24
		{[]int{0, 4}, core.ClassGlobal},
		{[]int{}, core.ClassGlobal},
		{[]int{0}, core.ClassGlobal},
		{[]int{4}, core.ClassGlobal},
	}
	for _, tt := range tests {
		if got := Classify(tt.x); got != tt.want {
			t.Errorf("Classify(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestTableComplete(t *testing.T) {
	rows := Table()
	if len(rows) != 32 {
		t.Fatalf("table has %d rows, want 32", len(rows))
	}
	counts := map[core.Class]int{}
	for _, r := range rows {
		counts[r.Class]++
	}
	// 16 subsets contain 2 (O(1)); of the remaining 16, exactly
	// {1,3,4}, {0,1,3}, {0,1,3,4} are Θ(log* n).
	if counts[core.ClassO1] != 16 {
		t.Errorf("O(1) count = %d, want 16", counts[core.ClassO1])
	}
	if counts[core.ClassLogStar] != 3 {
		t.Errorf("Θ(log* n) count = %d, want 3", counts[core.ClassLogStar])
	}
	if counts[core.ClassGlobal] != 13 {
		t.Errorf("global count = %d, want 13", counts[core.ClassGlobal])
	}
}

func TestFlipDuality(t *testing.T) {
	got := Flip([]int{1, 3, 4})
	want := []int{0, 1, 3}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Flip({1,3,4}) = %v, want %v", got, want)
	}
	// Flipping preserves the complexity class.
	for _, row := range Table() {
		if Classify(row.X) != Classify(Flip(row.X)) {
			t.Errorf("Flip changes class of %v", row.X)
		}
	}
}

// TestSynthesizeLogStarCases reproduces Lemma 23 and its mirror: the two
// minimal Θ(log* n) orientation problems synthesize with k = 1.
func TestSynthesizeLogStarCases(t *testing.T) {
	for _, x := range [][]int{{1, 3, 4}, {0, 1, 3}} {
		op, alg, err := Synthesize(context.Background(), x)
		if err != nil {
			t.Fatalf("X=%v: %v", x, err)
		}
		if alg.K != 1 {
			t.Errorf("X=%v synthesized with k=%d, paper says k=1 suffices", x, alg.K)
		}
		g := grid.Square(14)
		out, rounds, err := alg.Run(g, local.PermutedIDs(g.N(), 11))
		if err != nil {
			t.Fatal(err)
		}
		if err := op.Verify(g, out); err != nil {
			t.Fatalf("X=%v: %v", x, err)
		}
		o := lcl.OrientationFromLabels(op, g, out)
		if err := o.VerifyX(x); err != nil {
			t.Fatalf("X=%v decoded orientation: %v", x, err)
		}
		if rounds.Total() <= 0 {
			t.Error("rounds missing")
		}
	}
}

func TestSynthesizeGlobalFails(t *testing.T) {
	if _, _, err := Synthesize(context.Background(), []int{0, 4}); !errors.Is(err, core.ErrUnsatisfiable) {
		t.Errorf("X={0,4}: err = %v, want ErrUnsatisfiable", err)
	}
	if _, _, err := Synthesize(context.Background(), nil); err == nil {
		t.Error("empty X should fail")
	}
}
