// Package orient implements the exhaustive classification of
// X-orientation problems on 2-dimensional grids (§11, Theorem 22): for
// X ⊆ {0,...,4}, orient every edge so that each node's in-degree lies in
// X. The problem is O(1) when 2 ∈ X (the input orientation works),
// Θ(log* n) when {1,3,4} ⊆ X or {0,1,3} ⊆ X (synthesized normal-form
// algorithms), and otherwise has no solution for infinitely many n
// (global).
package orient

import (
	"context"
	"fmt"
	"sort"

	"lclgrid/internal/core"
	"lclgrid/internal/lcl"
)

// Classify returns the Theorem 22 complexity class of the X-orientation
// problem on 2-dimensional grids.
func Classify(x []int) core.Class {
	in := toSet(x)
	switch {
	case in[2]:
		return core.ClassO1
	case in[1] && in[3] && (in[4] || in[0]):
		return core.ClassLogStar
	default:
		return core.ClassGlobal
	}
}

func toSet(x []int) map[int]bool {
	in := make(map[int]bool, len(x))
	for _, d := range x {
		if d < 0 || d > 4 {
			panic(fmt.Sprintf("orient: in-degree %d out of range", d))
		}
		in[d] = true
	}
	return in
}

// Flip returns the in-degree set of the edge-reversed problem,
// {4-d : d ∈ X}; flipping all edge directions maps X-orientations to
// Flip(X)-orientations, so both have the same complexity (§11).
func Flip(x []int) []int {
	out := make([]int, 0, len(x))
	for _, d := range x {
		out = append(out, 4-d)
	}
	sort.Ints(out)
	return out
}

// AllSubsets enumerates all 32 subsets of {0,...,4} in mask order; used
// by the Theorem 22 classification table.
func AllSubsets() [][]int {
	var out [][]int
	for m := 0; m < 32; m++ {
		var x []int
		for d := 0; d <= 4; d++ {
			if m&(1<<d) != 0 {
				x = append(x, d)
			}
		}
		out = append(out, x)
	}
	return out
}

// Synthesize builds a normal-form algorithm for a Θ(log* n)
// X-orientation problem (Lemma 23 reports success with k = 1). It fails
// with core.ErrUnsatisfiable for problems outside the Θ(log* n) class.
// Cancelling ctx aborts the SAT search with the context's error.
func Synthesize(ctx context.Context, x []int) (*lcl.OrientationProblem, *core.Synthesized, error) {
	if len(x) == 0 {
		return nil, nil, fmt.Errorf("orient: empty X has no solutions")
	}
	op := lcl.XOrientation(x, 2)
	for _, win := range [][2]int{{3, 3}, {5, 5}} {
		alg, err := core.Synthesize(ctx, op.Problem, (win[0]-1)/2, win[0], win[1])
		if err == nil {
			return op, alg, nil
		}
		if err != core.ErrUnsatisfiable {
			return nil, nil, err
		}
	}
	return op, nil, core.ErrUnsatisfiable
}

// ClassifyAll returns the classification table of Theorem 22 for all 32
// subsets, as (X, class) pairs in mask order.
type TableRow struct {
	X     []int
	Class core.Class
}

// Table computes the full Theorem 22 table.
func Table() []TableRow {
	subsets := AllSubsets()
	rows := make([]TableRow, 0, len(subsets))
	for _, x := range subsets {
		rows = append(rows, TableRow{X: x, Class: Classify(x)})
	}
	return rows
}
