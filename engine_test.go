package lclgrid_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	lclgrid "lclgrid"
)

var bg = context.Background()

// TestEngineSolveConcurrent hammers Engine.Solve from 16 goroutines and
// asserts exactly one synthesis per problem fingerprint: the cache-hit
// counters must account for every call, and every result must still
// verify.
func TestEngineSolveConcurrent(t *testing.T) {
	eng := lclgrid.NewEngine()
	const goroutines = 16
	const perGoroutine = 4
	g := lclgrid.Square(16)
	ids := lclgrid.PermutedIDs(g.N(), 7)

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perGoroutine)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perGoroutine; j++ {
				res, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "5col", Torus: g, IDs: ids})
				if err != nil {
					errs <- err
					return
				}
				if res.Verification != lclgrid.Verified {
					errs <- fmt.Errorf("result not verified: %v", res)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stats := eng.CacheStats()
	if stats.Misses != 1 {
		t.Errorf("syntheses = %d, want exactly 1 for one fingerprint", stats.Misses)
	}
	if want := uint64(goroutines*perGoroutine - 1); stats.Hits != want {
		t.Errorf("hits = %d, want %d", stats.Hits, want)
	}
	if stats.Entries != 1 {
		t.Errorf("entries = %d, want 1", stats.Entries)
	}
}

// TestEngineCachesAcrossShapes checks that distinct (k, h, w) shapes and
// distinct problems get distinct cache slots, and that UNSAT outcomes
// are cached too.
func TestEngineCachesAcrossShapes(t *testing.T) {
	eng := lclgrid.NewEngine()
	p4 := lclgrid.VertexColoring(4, 2)
	p5 := lclgrid.VertexColoring(5, 2)

	if _, _, err := eng.Synthesize(bg, p4, 1, 3, 2); err == nil {
		t.Fatal("4col at k=1 should be UNSAT")
	}
	if _, cached, err := eng.Synthesize(bg, p4, 1, 3, 2); err == nil || !cached {
		t.Errorf("UNSAT result not served from cache (cached=%v, err=%v)", cached, err)
	}
	if _, _, err := eng.Synthesize(bg, p5, 1, 3, 2); err != nil {
		t.Fatalf("5col at k=1: %v", err)
	}
	stats := eng.CacheStats()
	if stats.Entries != 2 || stats.Misses != 2 || stats.Hits != 1 {
		t.Errorf("stats = %+v, want 2 entries, 2 misses, 1 hit", stats)
	}
}

// TestEngineClassifyUsesCache verifies the oracle reuses cached shapes.
func TestEngineClassifyUsesCache(t *testing.T) {
	eng := lclgrid.NewEngine()
	p := lclgrid.VertexColoring(5, 2)
	first := eng.Classify(bg, p, 1)
	if first.Class != lclgrid.ClassLogStar {
		t.Fatalf("5col classified %v", first.Class)
	}
	before := eng.CacheStats()
	second := eng.Classify(bg, p, 1)
	if second.Class != lclgrid.ClassLogStar {
		t.Fatalf("5col re-classified %v", second.Class)
	}
	after := eng.CacheStats()
	if after.Misses != before.Misses {
		t.Errorf("re-classification synthesized again: %d -> %d misses", before.Misses, after.Misses)
	}
}

// TestFingerprint pins the canonical-fingerprint contract the cache key
// relies on: stable across construction, sensitive to relations, labels
// and dims, insensitive to the display name.
func TestFingerprint(t *testing.T) {
	a := lclgrid.VertexColoring(4, 2)
	b := lclgrid.VertexColoring(4, 2)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical problems have different fingerprints")
	}
	if a.Fingerprint() == lclgrid.VertexColoring(5, 2).Fingerprint() {
		t.Error("different alphabets share a fingerprint")
	}
	if a.Fingerprint() == lclgrid.VertexColoring(4, 1).Fingerprint() {
		t.Error("different dims share a fingerprint")
	}
	renamed := lclgrid.NewProblem("other name", []string{"1", "2", "3", "4"}, 2,
		func(dim, x, y int) bool { return x != y }, nil)
	if a.Fingerprint() != renamed.Fingerprint() {
		t.Error("display name must not change the fingerprint")
	}
	relaxed := lclgrid.NewProblem("relaxed", []string{"1", "2", "3", "4"}, 2,
		func(dim, x, y int) bool { return dim == 1 || x != y }, nil)
	if a.Fingerprint() == relaxed.Fingerprint() {
		t.Error("different relations share a fingerprint")
	}
}

// --- request/response wire format ------------------------------------------

// TestSolveRequestJSONRoundTrip pins the wire contract of SolveRequest:
// every JSON-visible field survives a marshal/unmarshal cycle.
func TestSolveRequestJSONRoundTrip(t *testing.T) {
	req := lclgrid.SolveRequest{
		Key:      "4col",
		Sides:    []int{16, 20},
		N:        16,
		IDs:      []int{3, 1, 2},
		Seed:     99,
		NoVerify: true,
		Power:    3,
		H:        7,
		W:        5,
		MaxPower: 2,
		Ell:      31,
		MaxSteps: 50,
		EdgeParams: lclgrid.EdgeColorParams{
			K: 3, RowSpacing: 338, MoveCap: 156,
		},
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back lclgrid.SolveRequest
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, back) {
		t.Errorf("request round-trip mismatch:\n sent %+v\n got  %+v", req, back)
	}
	// The minimal service form decodes too.
	var minimal lclgrid.SolveRequest
	if err := json.Unmarshal([]byte(`{"key":"4col","n":16}`), &minimal); err != nil {
		t.Fatal(err)
	}
	if minimal.Key != "4col" || minimal.N != 16 {
		t.Errorf("minimal request decoded as %+v", minimal)
	}
}

// TestResultJSONRoundTrip pins the wire contract of Result, including
// the textual Class and VerifyStatus tokens.
func TestResultJSONRoundTrip(t *testing.T) {
	eng := lclgrid.NewEngine()
	res, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "5col", N: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	// The execution trace is engine observability, not wire data: the
	// marshalled form must not carry it (service output stays stable),
	// so it is cleared before comparing the round trip.
	if len(res.Trace) == 0 {
		t.Error("Engine.Solve result carries no Trace")
	}
	if strings.Contains(string(b), `"trace"`) {
		t.Errorf("Result wire form leaks the trace: %s", b)
	}
	var back lclgrid.Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	want := *res
	want.Trace = nil
	if !reflect.DeepEqual(want, back) {
		t.Errorf("result round-trip mismatch:\n sent %+v\n got  %+v", want, back)
	}
	if back.Class != lclgrid.ClassLogStar || back.Verification != lclgrid.Verified {
		t.Errorf("class/verification tokens decoded as %v/%v", back.Class, back.Verification)
	}
	if back.Elapsed <= 0 {
		t.Error("Elapsed not stamped or not round-tripped")
	}
}

// --- registry fallback aliasing (regression) --------------------------------

// sharedResultSolver returns the same *Result on every call, the way a
// caching solver adapter legitimately might.
type sharedResultSolver struct{ res *lclgrid.Result }

func (s *sharedResultSolver) Name() string { return "shared-result" }
func (s *sharedResultSolver) Solve(ctx context.Context, t *lclgrid.Torus, ids []int, opts ...lclgrid.Option) (*lclgrid.Result, error) {
	return s.res, nil
}

// TestSolveDoesNotMutateSolverResult is the regression test for the
// registry class fallback: Engine.Solve must fill a missing Class on a
// copy, never by writing through the solver's returned pointer.
func TestSolveDoesNotMutateSolverResult(t *testing.T) {
	shared := &lclgrid.Result{Problem: "shared", Solver: "shared-result", Class: lclgrid.ClassUnknown}
	reg := lclgrid.NewRegistry()
	if err := reg.Register(&lclgrid.ProblemSpec{
		Key:   "shared",
		Name:  "shared",
		Class: lclgrid.ClassLogStar,
		Direct: func(e *lclgrid.Engine) lclgrid.Solver {
			return &sharedResultSolver{res: shared}
		},
	}); err != nil {
		t.Fatal(err)
	}
	eng := lclgrid.NewEngine(lclgrid.WithRegistry(reg))
	res, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "shared", N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != lclgrid.ClassLogStar {
		t.Errorf("returned class = %v, want the registered ClassLogStar", res.Class)
	}
	if shared.Class != lclgrid.ClassUnknown {
		t.Errorf("solver's shared Result was mutated: Class = %v", shared.Class)
	}
	if shared.Elapsed != 0 {
		t.Errorf("solver's shared Result was mutated: Elapsed = %v", shared.Elapsed)
	}
	if res == shared {
		t.Error("engine returned the solver's pointer after changing the class")
	}
}

// --- cache maintenance ------------------------------------------------------

func TestEngineEvictAndReset(t *testing.T) {
	eng := lclgrid.NewEngine()
	p5 := lclgrid.VertexColoring(5, 2)
	p6 := lclgrid.VertexColoring(6, 2)
	for _, p := range []*lclgrid.Problem{p5, p6} {
		if _, _, err := eng.Synthesize(bg, p, 1, 3, 2); err != nil {
			t.Fatal(err)
		}
	}
	if !eng.Evict(p5, 1, 3, 2) {
		t.Error("Evict of a cached entry reported false")
	}
	if eng.Evict(p5, 1, 3, 2) {
		t.Error("Evict of a missing entry reported true")
	}
	if got := eng.CacheStats().Entries; got != 1 {
		t.Errorf("entries after evict = %d, want 1", got)
	}
	// The evicted shape re-synthesizes.
	if _, cached, err := eng.Synthesize(bg, p5, 1, 3, 2); err != nil || cached {
		t.Errorf("post-evict synthesize: cached=%v err=%v, want a fresh miss", cached, err)
	}
	if removed := eng.Reset(); removed != 2 {
		t.Errorf("Reset removed %d entries, want 2", removed)
	}
	stats := eng.CacheStats()
	if stats.Entries != 0 || stats.Hits != 0 || stats.Misses != 0 {
		t.Errorf("stats after Reset = %+v, want all zero", stats)
	}
}

// --- cancellation -----------------------------------------------------------

// TestBatchPreCancelled: a batch under an already-cancelled context
// returns promptly with context.Canceled for every request and performs
// zero syntheses.
func TestBatchPreCancelled(t *testing.T) {
	eng := lclgrid.NewEngine()
	ctx, cancel := context.WithCancel(bg)
	cancel()
	reqs := []lclgrid.SolveRequest{
		{Key: "5col", N: 16},
		{Key: "mis", N: 12},
		{Key: "4col", N: 28},
	}
	done := make(chan struct{})
	var items []lclgrid.BatchItem
	var stats lclgrid.BatchStats
	go func() {
		items, stats = eng.SolveBatch(ctx, reqs, lclgrid.WithWorkers(2))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pre-cancelled batch did not return promptly")
	}
	if len(items) != len(reqs) || stats.Errors != len(reqs) {
		t.Fatalf("items=%d stats=%+v, want every request failed", len(items), stats)
	}
	for i, it := range items {
		if !errors.Is(it.Err, context.Canceled) {
			t.Errorf("item %d: err = %v, want context.Canceled", i, it.Err)
		}
		if it.Result != nil {
			t.Errorf("item %d carries a result", i)
		}
	}
	if got := eng.CacheStats().Misses; got != 0 {
		t.Errorf("pre-cancelled batch performed %d syntheses, want 0", got)
	}
}

// TestCancelMidSynthesisNoPoison: cancelling the context during a cold
// synthesis returns context.Canceled without leaving a poisoned cache
// entry — a subsequent uncancelled call succeeds and caches normally.
func TestCancelMidSynthesisNoPoison(t *testing.T) {
	eng := lclgrid.NewEngine()
	ctx, cancel := context.WithCancel(bg)
	p := lclgrid.VertexColoring(4, 2)

	errCh := make(chan error, 1)
	go func() {
		_, _, err := eng.Synthesize(ctx, p, 3, 7, 5)
		errCh <- err
	}()
	// Wait until the synthesis owns its cache slot, then cancel. The k=3
	// synthesis takes ~100ms, so the cancel lands mid-flight.
	for eng.CacheStats().Misses == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			// On a very slow cancel delivery the synthesis may have won the
			// race; that is not a poisoning bug, but the test loses its
			// subject.
			if err == nil {
				t.Skip("synthesis completed before the cancel was observed")
			}
			t.Fatalf("cancelled synthesis returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled synthesis never returned")
	}
	if got := eng.CacheStats().Entries; got != 0 {
		t.Fatalf("aborted synthesis left %d cache entries (poisoned slot)", got)
	}
	// A subsequent uncancelled request succeeds.
	alg, cached, err := eng.Synthesize(bg, p, 3, 7, 5)
	if err != nil || alg == nil {
		t.Fatalf("post-cancel synthesize failed: %v", err)
	}
	if cached {
		t.Error("post-cancel synthesize claims a cache hit; the aborted entry leaked")
	}
	if res, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "4col", N: 28}); err != nil || !res.CacheHit {
		t.Errorf("post-cancel solve: err=%v cacheHit=%v, want cached success", err, res.CacheHit)
	}
}

// TestWaiterDetachesOnOwnContext: a request coalesced onto another
// request's in-flight synthesis returns its own context's error when
// cancelled, while the shared synthesis keeps running and caches.
func TestWaiterDetachesOnOwnContext(t *testing.T) {
	eng := lclgrid.NewEngine()
	p := lclgrid.VertexColoring(4, 2)

	ownerDone := make(chan error, 1)
	go func() {
		_, _, err := eng.Synthesize(bg, p, 3, 7, 5)
		ownerDone <- err
	}()
	for eng.CacheStats().Misses == 0 {
		time.Sleep(100 * time.Microsecond)
	}

	waiterCtx, cancelWaiter := context.WithCancel(bg)
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := eng.Synthesize(waiterCtx, p, 3, 7, 5)
		waiterDone <- err
	}()
	cancelWaiter()
	select {
	case err := <-waiterDone:
		// nil is possible only if the owner finished before the waiter's
		// cancel was observed — accept either outcome, but a detached
		// waiter must report its own context's error.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter returned %v, want context.Canceled (or a completed result)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled waiter never detached")
	}
	if err := <-ownerDone; err != nil {
		t.Fatalf("owner synthesis failed: %v", err)
	}
	if got := eng.CacheStats().Entries; got != 1 {
		t.Errorf("entries = %d, want the owner's synthesis cached", got)
	}
}

// --- batch execution --------------------------------------------------------

// TestSolveBatchCoalesces is the batch acceptance contract: 32 requests
// sharing 4 distinct problem fingerprints on 16 workers perform exactly
// 4 syntheses and come back in input order.
func TestSolveBatchCoalesces(t *testing.T) {
	eng := lclgrid.NewEngine()
	keys := []string{"5col", "mis", "orient134", "orient013"}
	names := map[string]string{}
	for _, k := range keys {
		spec, err := eng.Registry().Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		names[k] = spec.Name
	}
	var reqs []lclgrid.SolveRequest
	for i := 0; i < 32; i++ {
		reqs = append(reqs, lclgrid.SolveRequest{Key: keys[i%len(keys)], N: 16, Seed: int64(i + 1)})
	}
	items, stats := eng.SolveBatch(bg, reqs, lclgrid.WithWorkers(16))
	if len(items) != 32 {
		t.Fatalf("got %d items for 32 requests", len(items))
	}
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("request %d (%s): %v", i, reqs[i].Key, it.Err)
		}
		if want := names[reqs[i].Key]; it.Result.Problem != want {
			t.Errorf("item %d out of order: problem %q, want %q", i, it.Result.Problem, want)
		}
		if it.Result.Verification != lclgrid.Verified {
			t.Errorf("item %d not verified: %v", i, it.Result)
		}
		if it.Result.Elapsed <= 0 {
			t.Errorf("item %d missing Elapsed", i)
		}
	}
	if got := eng.CacheStats().Misses; got != 4 {
		t.Errorf("batch performed %d syntheses, want exactly 4 (one per fingerprint)", got)
	}
	if stats.Requests != 32 || stats.Errors != 0 || stats.Workers != 16 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.CacheHits != 32-4 {
		t.Errorf("stats.CacheHits = %d, want 28 (every request beyond the 4 cold ones)", stats.CacheHits)
	}
	if stats.Wall <= 0 {
		t.Error("stats.Wall not recorded")
	}
}

// TestSolveBatchMixedFailures: per-request failures stay per-request.
func TestSolveBatchMixedFailures(t *testing.T) {
	eng := lclgrid.NewEngine()
	reqs := []lclgrid.SolveRequest{
		{Key: "5col", N: 16},
		{Key: "nope"},       // unknown key
		{Key: "2col", N: 5}, // unsolvable: odd torus
		{},                  // no problem named
		{Key: "5col", N: 16, IDs: []int{1, 2, 3}}, // ids do not cover the torus
		{Key: "5col", N: 16, Seed: 2},
	}
	items, stats := eng.SolveBatch(bg, reqs)
	if stats.Errors != 4 {
		t.Errorf("errors = %d, want 4", stats.Errors)
	}
	if items[0].Err != nil || items[5].Err != nil {
		t.Errorf("good requests failed: %v, %v", items[0].Err, items[5].Err)
	}
	if items[1].Err == nil || items[3].Err == nil {
		t.Error("bad requests succeeded")
	}
	if !errors.Is(items[2].Err, lclgrid.ErrUnsolvable) {
		t.Errorf("odd-torus 2col: err = %v, want ErrUnsolvable", items[2].Err)
	}
	// A wire-settable IDs slice of the wrong length is a per-request
	// error, never a panic that takes down the batch.
	if items[4].Err == nil || !strings.Contains(items[4].Err.Error(), "ids") {
		t.Errorf("short ids: err = %v, want a per-request ids validation error", items[4].Err)
	}
}

// TestSolveTooSmallTorusFallsBack: a request below the registered normal
// form's minimum side is served by the Θ(n) baseline instead of failing.
func TestSolveTooSmallTorusFallsBack(t *testing.T) {
	eng := lclgrid.NewEngine()
	res, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "4col", N: 16})
	if err != nil {
		t.Fatalf("4col on 16×16 (below MinTorusSide 28): %v", err)
	}
	if res.Solver != "global brute force" {
		t.Errorf("solver = %q, want the global fallback", res.Solver)
	}
	if res.Class != lclgrid.ClassLogStar {
		t.Errorf("class = %v, want the problem's registered Θ(log* n)", res.Class)
	}
	if res.Verification != lclgrid.Verified {
		t.Errorf("fallback result not verified: %v", res)
	}
	// Forcing synthesis must NOT fall back: the caller asked for the
	// normal form specifically.
	if _, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "4col", N: 16, Power: 3}); !errors.Is(err, lclgrid.ErrTorusTooSmall) {
		t.Errorf("forced synthesis on a small torus: err = %v, want ErrTorusTooSmall", err)
	}
	// The inline-problem path has the same fallback semantics as the
	// registered-key path.
	res, err = eng.Solve(bg, lclgrid.SolveRequest{Problem: lclgrid.VertexColoring(4, 2), N: 16})
	if err != nil {
		t.Fatalf("inline 4col on 16×16: %v", err)
	}
	if res.Solver != "global brute force" || res.Class != lclgrid.ClassLogStar {
		t.Errorf("inline fallback: solver=%q class=%v, want global brute force / Θ(log* n)", res.Solver, res.Class)
	}
}

// TestInlineProblemDims: a non-2-dimensional inline problem is served by
// the Θ(n) baseline (the oracle has no synthesis to attempt) instead of
// panicking, and a problem/torus dimension mismatch is a request error.
func TestInlineProblemDims(t *testing.T) {
	eng := lclgrid.NewEngine()
	res, err := eng.Solve(bg, lclgrid.SolveRequest{Problem: lclgrid.VertexColoring(4, 3), Sides: []int{6, 6, 6}})
	if err != nil {
		t.Fatalf("3-dimensional 4-colouring: %v", err)
	}
	if res.Solver != "global brute force" || res.Verification != lclgrid.Verified {
		t.Errorf("3-d problem served by %q (%v), want the verified global baseline", res.Solver, res.Verification)
	}
	if _, err := eng.Solve(bg, lclgrid.SolveRequest{Problem: lclgrid.VertexColoring(4, 2), Sides: []int{6, 6, 6}}); err == nil {
		t.Error("2-d problem on a 3-d torus must be a request error")
	}
	if _, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "4col", Sides: []int{6, 6, 6}}); err == nil {
		t.Error("2-d registered key on a 3-d torus must be a request error")
	}
}

// TestMalformedShapeRequests: wire-settable synthesis shapes (Power, H,
// W) with negative values are per-request errors, never panics — and
// repeating the same malformed request must not deadlock on a poisoned
// singleflight entry.
func TestMalformedShapeRequests(t *testing.T) {
	eng := lclgrid.NewEngine()
	bad := lclgrid.SolveRequest{Key: "4col", N: 16, Power: 1, H: -1, W: 2}
	done := make(chan struct{})
	var items []lclgrid.BatchItem
	go func() {
		items, _ = eng.SolveBatch(bg, []lclgrid.SolveRequest{bad, bad, {Key: "5col", N: 16}}, lclgrid.WithWorkers(1))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("repeated malformed request deadlocked the batch")
	}
	for i := 0; i < 2; i++ {
		if items[i].Err == nil || !strings.Contains(items[i].Err.Error(), "must be positive") {
			t.Errorf("malformed request %d: err = %v, want a positive-parameters error", i, items[i].Err)
		}
	}
	if items[2].Err != nil {
		t.Errorf("well-formed request after malformed ones failed: %v", items[2].Err)
	}
	// Direct engine calls get the same error instead of a panic.
	if _, _, err := eng.Synthesize(bg, lclgrid.VertexColoring(4, 2), 1, -1, 2); err == nil {
		t.Error("negative window must be an error")
	}
}

// TestSolveRequestEdgeParamsReachSolver: the wire-settable EdgeParams
// override the §10 constants inside the edge-colouring solver. Custom
// constants cannot actually succeed on small tori (the construction
// needs paper-scale spacing), so the proof of plumbing is the
// params-specific failure instead of the default-constants one.
func TestSolveRequestEdgeParamsReachSolver(t *testing.T) {
	eng := lclgrid.NewEngine()
	_, err := eng.Solve(bg, lclgrid.SolveRequest{
		Key: "5edgecol", N: 40, Seed: 1,
		EdgeParams: lclgrid.EdgeColorParams{K: 3, RowSpacing: 18, MoveCap: 150},
	})
	if err == nil || !strings.Contains(err.Error(), "150 moves") {
		t.Errorf("custom EdgeParams did not reach the solver: err = %v", err)
	}
}
