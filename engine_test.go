package lclgrid_test

import (
	"fmt"
	"sync"
	"testing"

	lclgrid "lclgrid"
)

// TestEngineSolveConcurrent hammers Engine.Solve from 16 goroutines and
// asserts exactly one synthesis per problem fingerprint: the cache-hit
// counters must account for every call, and every result must still
// verify.
func TestEngineSolveConcurrent(t *testing.T) {
	eng := lclgrid.NewEngine()
	const goroutines = 16
	const perGoroutine = 4
	g := lclgrid.Square(16)
	ids := lclgrid.PermutedIDs(g.N(), 7)

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perGoroutine)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perGoroutine; j++ {
				res, err := eng.Solve("5col", g, ids)
				if err != nil {
					errs <- err
					return
				}
				if res.Verification != lclgrid.Verified {
					errs <- fmt.Errorf("result not verified: %v", res)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stats := eng.CacheStats()
	if stats.Misses != 1 {
		t.Errorf("syntheses = %d, want exactly 1 for one fingerprint", stats.Misses)
	}
	if want := uint64(goroutines*perGoroutine - 1); stats.Hits != want {
		t.Errorf("hits = %d, want %d", stats.Hits, want)
	}
	if stats.Entries != 1 {
		t.Errorf("entries = %d, want 1", stats.Entries)
	}
}

// TestEngineCachesAcrossShapes checks that distinct (k, h, w) shapes and
// distinct problems get distinct cache slots, and that UNSAT outcomes
// are cached too.
func TestEngineCachesAcrossShapes(t *testing.T) {
	eng := lclgrid.NewEngine()
	p4 := lclgrid.VertexColoring(4, 2)
	p5 := lclgrid.VertexColoring(5, 2)

	if _, _, err := eng.Synthesize(p4, 1, 3, 2); err == nil {
		t.Fatal("4col at k=1 should be UNSAT")
	}
	if _, cached, err := eng.Synthesize(p4, 1, 3, 2); err == nil || !cached {
		t.Errorf("UNSAT result not served from cache (cached=%v, err=%v)", cached, err)
	}
	if _, _, err := eng.Synthesize(p5, 1, 3, 2); err != nil {
		t.Fatalf("5col at k=1: %v", err)
	}
	stats := eng.CacheStats()
	if stats.Entries != 2 || stats.Misses != 2 || stats.Hits != 1 {
		t.Errorf("stats = %+v, want 2 entries, 2 misses, 1 hit", stats)
	}
}

// TestEngineClassifyUsesCache verifies the oracle reuses cached shapes.
func TestEngineClassifyUsesCache(t *testing.T) {
	eng := lclgrid.NewEngine()
	p := lclgrid.VertexColoring(5, 2)
	first := eng.Classify(p, 1)
	if first.Class != lclgrid.ClassLogStar {
		t.Fatalf("5col classified %v", first.Class)
	}
	before := eng.CacheStats()
	second := eng.Classify(p, 1)
	if second.Class != lclgrid.ClassLogStar {
		t.Fatalf("5col re-classified %v", second.Class)
	}
	after := eng.CacheStats()
	if after.Misses != before.Misses {
		t.Errorf("re-classification synthesized again: %d -> %d misses", before.Misses, after.Misses)
	}
}

// TestFingerprint pins the canonical-fingerprint contract the cache key
// relies on: stable across construction, sensitive to relations, labels
// and dims, insensitive to the display name.
func TestFingerprint(t *testing.T) {
	a := lclgrid.VertexColoring(4, 2)
	b := lclgrid.VertexColoring(4, 2)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical problems have different fingerprints")
	}
	if a.Fingerprint() == lclgrid.VertexColoring(5, 2).Fingerprint() {
		t.Error("different alphabets share a fingerprint")
	}
	if a.Fingerprint() == lclgrid.VertexColoring(4, 1).Fingerprint() {
		t.Error("different dims share a fingerprint")
	}
	renamed := lclgrid.NewProblem("other name", []string{"1", "2", "3", "4"}, 2,
		func(dim, x, y int) bool { return x != y }, nil)
	if a.Fingerprint() != renamed.Fingerprint() {
		t.Error("display name must not change the fingerprint")
	}
	relaxed := lclgrid.NewProblem("relaxed", []string{"1", "2", "3", "4"}, 2,
		func(dim, x, y int) bool { return dim == 1 || x != y }, nil)
	if a.Fingerprint() == relaxed.Fingerprint() {
		t.Error("different relations share a fingerprint")
	}
}
