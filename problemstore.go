package lclgrid

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// StoredProblem is one user-defined problem as the ProblemStore keeps
// it: the fingerprint-derived registry key, the full fingerprint, and
// the canonical definition form (see ProblemDef.Canonical).
type StoredProblem struct {
	Key         string      `json:"key"`
	Fingerprint string      `json:"fingerprint"`
	Def         *ProblemDef `json:"def"`
}

// ProblemStore persists user problem definitions — the registration
// state behind POST /v1/problems. Implementations must be safe for
// concurrent use.
//
// Built-in implementations: NewMemoryProblemStore (process-local, the
// server default) and NewDirProblemStore (atomic dir-backed, mirroring
// the disk synthesis cache's layout; `serve -problems-dir`), which
// makes registered problems survive restarts and feed warm-on-boot.
type ProblemStore interface {
	// Get returns the stored problem for a registry key.
	Get(key string) (StoredProblem, bool)
	// ByFingerprint returns the stored problem with the given canonical
	// fingerprint — the idempotency probe of POST /v1/problems.
	ByFingerprint(fp string) (StoredProblem, bool)
	// Put stores a problem, replacing any entry with the same key.
	Put(sp StoredProblem) error
	// List returns every stored problem, ordered by key.
	List() []StoredProblem
}

// --- In-memory store --------------------------------------------------------

type memoryProblemStore struct {
	mu    sync.RWMutex
	byKey map[string]StoredProblem
	byFP  map[string]string // fingerprint → key
}

// NewMemoryProblemStore returns a process-local ProblemStore — the
// default behind POST /v1/problems when no -problems-dir is given.
func NewMemoryProblemStore() ProblemStore {
	return &memoryProblemStore{
		byKey: make(map[string]StoredProblem),
		byFP:  make(map[string]string),
	}
}

func (s *memoryProblemStore) Get(key string) (StoredProblem, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sp, ok := s.byKey[key]
	return sp, ok
}

func (s *memoryProblemStore) ByFingerprint(fp string) (StoredProblem, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	key, ok := s.byFP[fp]
	if !ok {
		return StoredProblem{}, false
	}
	sp, ok := s.byKey[key]
	return sp, ok
}

func (s *memoryProblemStore) Put(sp StoredProblem) error {
	if sp.Key == "" || sp.Fingerprint == "" || sp.Def == nil {
		return fmt.Errorf("lclgrid: problem store: record needs a key, a fingerprint and a definition")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byKey[sp.Key] = sp
	s.byFP[sp.Fingerprint] = sp.Key
	return nil
}

func (s *memoryProblemStore) List() []StoredProblem {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]StoredProblem, 0, len(s.byKey))
	for _, sp := range s.byKey {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// --- Dir-backed store -------------------------------------------------------

// dirProblemStore layers persistence under a memory store the same way
// diskCache layers under a SynthCache: one JSON file per problem,
// atomic temp-file + rename writes, fingerprint-derived file names (so
// concurrent servers can safely share a directory), and corrupt files
// removed on load so the next Put heals them. The memory layer is
// loaded once at open; reads never touch the disk afterwards.
type dirProblemStore struct {
	dir   string
	inner *memoryProblemStore

	// mu serialises the disk writes, mirroring diskCache: Put traffic is
	// rare (one write per novel definition), so one mutex costs nothing.
	mu sync.Mutex
}

// problemFileSuffix names the store's files: <fingerprint>.problem.json,
// alongside the disk cache's <fingerprint>-k..x...synth.json layout so
// one data directory can carry both.
const problemFileSuffix = ".problem.json"

// NewDirProblemStore returns a ProblemStore persisting definitions as
// JSON files under dir (created if needed), pre-loaded with every valid
// record already there. Corrupt or mismatched files are removed during
// the load — the store self-heals the way the disk cache does.
func NewDirProblemStore(dir string) (ProblemStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("lclgrid: problem store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lclgrid: problem store: %w", err)
	}
	s := &dirProblemStore{
		dir:   dir,
		inner: NewMemoryProblemStore().(*memoryProblemStore),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lclgrid: problem store: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, problemFileSuffix) {
			continue
		}
		path := filepath.Join(dir, name)
		sp, err := readProblemFile(path, strings.TrimSuffix(name, problemFileSuffix))
		if err != nil {
			// Corrupt, truncated or misnamed: drop it so a re-Put heals it.
			os.Remove(path)
			continue
		}
		_ = s.inner.Put(sp)
	}
	return s, nil
}

// readProblemFile loads and cross-checks one store file: the record
// must decode, validate as a definition, and carry the fingerprint (and
// fingerprint-derived key) its file name claims — a renamed or edited
// file is corruption, not configuration.
func readProblemFile(path, stem string) (StoredProblem, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return StoredProblem{}, err
	}
	var sp StoredProblem
	if err := json.Unmarshal(data, &sp); err != nil {
		return StoredProblem{}, err
	}
	if sp.Def == nil {
		return StoredProblem{}, fmt.Errorf("lclgrid: problem file carries no definition")
	}
	fp, err := sp.Def.Fingerprint()
	if err != nil {
		return StoredProblem{}, err
	}
	if fp != sp.Fingerprint || fp != stem || sp.Key != userKey(fp) {
		return StoredProblem{}, fmt.Errorf("lclgrid: problem file %s disagrees with its contents", path)
	}
	return sp, nil
}

// problemPath returns the store file for a fingerprint, or "" when the
// fingerprint is not safely encodable as a file name (same hex-only
// validation as the disk cache's cacheKeyName).
func (s *dirProblemStore) problemPath(fp string) string {
	if fp == "" || len(fp) > 128 {
		return ""
	}
	for _, ch := range fp {
		switch {
		case ch >= '0' && ch <= '9', ch >= 'a' && ch <= 'f':
		default:
			return ""
		}
	}
	return filepath.Join(s.dir, fp+problemFileSuffix)
}

func (s *dirProblemStore) Get(key string) (StoredProblem, bool) { return s.inner.Get(key) }

func (s *dirProblemStore) ByFingerprint(fp string) (StoredProblem, bool) {
	return s.inner.ByFingerprint(fp)
}

func (s *dirProblemStore) List() []StoredProblem { return s.inner.List() }

func (s *dirProblemStore) Put(sp StoredProblem) error {
	if err := s.inner.Put(sp); err != nil {
		return err
	}
	path := s.problemPath(sp.Fingerprint)
	if path == "" {
		return fmt.Errorf("lclgrid: problem store: fingerprint %q is not encodable as a file name", sp.Fingerprint)
	}
	data, err := json.Marshal(sp)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, ".tmp-*"+problemFileSuffix)
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
