package lclgrid

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// TestGatewayDefineProblem pins the fleet-level DSL contract: POST
// /v1/problems broadcasts the registration to every shard (registry
// state is process-local, so all shards must learn the definition), GET
// /v1/problems/{key} proxies the definition back, and both user-key and
// inline-definition solves route through the gateway.
func TestGatewayDefineProblem(t *testing.T) {
	shardA, _ := startServer(t, NewServer(NewEngine()))
	shardB, _ := startServer(t, NewServer(NewEngine()))
	gw, err := NewGateway([]string{shardA, shardB})
	if err != nil {
		t.Fatal(err)
	}
	gwBase := startGateway(t, gw)
	doc := threeColJSON(t)

	resp, body := postJSON(t, gwBase+"/v1/problems", doc)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("gateway POST: %d\n%s", resp.StatusCode, body)
	}
	var dr defineResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}

	// Broadcast: EVERY shard must know the key afterwards, because a
	// re-sharded or failed-over request may land anywhere.
	for _, shard := range []string{shardA, shardB} {
		resp, body := getBody(t, shard+"/v1/problems/"+dr.Key)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("shard %s does not know %s: %d\n%s", shard, dr.Key, resp.StatusCode, body)
		}
	}

	// Idempotent re-post through the gateway.
	resp, body = postJSON(t, gwBase+"/v1/problems", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway re-POST: %d\n%s", resp.StatusCode, body)
	}

	// Proxied read-back.
	resp, body = getBody(t, gwBase+"/v1/problems/"+dr.Key)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway GET: %d\n%s", resp.StatusCode, body)
	}
	var pd problemDoc
	if err := json.Unmarshal(body, &pd); err != nil {
		t.Fatal(err)
	}
	if pd.Fingerprint != dr.Fingerprint || pd.Source != SourceUser {
		t.Errorf("gateway problem doc: %+v", pd)
	}

	// A defective definition relays the shard's 400 verdict, not a 502.
	resp, body = postJSON(t, gwBase+"/v1/problems", `{"dims":2,"labels":["a"],"allow":[[["a","zzz"]],[]]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad define through gateway: %d\n%s", resp.StatusCode, body)
	}

	// Solve by user key and by inline definition through the gateway;
	// both must label identically (deterministic solvers, same ids).
	resp, byKey := postJSON(t, gwBase+"/v1/solve", fmt.Sprintf(`{"key":%q,"n":12,"seed":3}`, dr.Key))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway solve by key: %d\n%s", resp.StatusCode, byKey)
	}
	resp, byDef := postJSON(t, gwBase+"/v1/solve", fmt.Sprintf(`{"problem_def":%s,"n":12,"seed":3}`, doc))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway solve by inline def: %d\n%s", resp.StatusCode, byDef)
	}
	var rKey, rDef Result
	if err := json.Unmarshal(byKey, &rKey); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(byDef, &rDef); err != nil {
		t.Fatal(err)
	}
	if len(rKey.Labels) == 0 || len(rKey.Labels) != len(rDef.Labels) {
		t.Fatalf("label shapes differ: %d vs %d", len(rKey.Labels), len(rDef.Labels))
	}
	for i := range rKey.Labels {
		if rKey.Labels[i] != rDef.Labels[i] {
			t.Fatalf("labels differ at %d", i)
		}
	}
}

// TestGatewayInlineDefRoutesByFingerprint: an inline problem_def
// document routes by its compiled fingerprint — the same placement as
// the registered user key, never the single-shard fallback that an
// unroutable document gets.
func TestGatewayInlineDefRoutesByFingerprint(t *testing.T) {
	gw, err := NewGateway([]string{"http://127.0.0.1:1", "http://127.0.0.1:2", "http://127.0.0.1:3"})
	if err != nil {
		t.Fatal(err)
	}
	def := threeColDef()
	fp, err := def.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(def)
	if err != nil {
		t.Fatal(err)
	}
	var doc keyDoc
	if err := json.Unmarshal([]byte(fmt.Sprintf(`{"problem_def":%s,"n":12}`, data)), &doc); err != nil {
		t.Fatal(err)
	}
	if got := gw.docRoutingKey(doc); got != fp {
		t.Errorf("inline def routes by %q, want its fingerprint %s", got, fp)
	}

	// After the define broadcast the gateway has memoized key → fp, so
	// the registered key routes to the same ring position as the inline
	// form of the same problem.
	gw.learnBinding([]byte(fmt.Sprintf(`{"key":%q,"fingerprint":%q}`, userKey(fp), fp)))
	if got := gw.docRoutingKey(keyDoc{Key: userKey(fp)}); got != fp {
		t.Errorf("user key routes by %q, want the memoized fingerprint %s", got, fp)
	}

	// A keyless, defless document has no route (single-shard fallback).
	if got := gw.docRoutingKey(keyDoc{}); got != "" {
		t.Errorf("unroutable doc got route %q", got)
	}
}
