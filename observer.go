package lclgrid

import (
	"sync/atomic"
	"time"
)

// Observer receives engine lifecycle events: one pair per request, one
// pair per SAT synthesis actually run, and one event per cache
// interaction. Install with NewEngine(WithObserver(...)); several
// observers compose (each receives every event, in installation
// order).
//
// Callbacks are invoked synchronously on the goroutine doing the work —
// from inside the engine's request path and its singleflight synthesis
// path — so they must be fast and must be safe for concurrent use
// (batch and stream execution deliver events from many workers at
// once). An observer must not call back into the engine it observes.
//
// Embed NopObserver to implement only the events you care about.
type Observer interface {
	// RequestStart fires when Engine.Solve accepts a request (including
	// each request of a batch or stream).
	RequestStart(req SolveRequest)
	// RequestEnd fires when the request completes; exactly one of res
	// and err is meaningful (res may be non-nil alongside err for
	// partial results, e.g. a labelling that failed verification).
	RequestEnd(req SolveRequest, res *Result, err error)
	// SynthesisStart fires when a SAT synthesis is elected to run (a
	// cache miss that this goroutine now owns).
	SynthesisStart(key SynthKey)
	// SynthesisEnd fires when that synthesis returns; err is nil on
	// success, ErrUnsatisfiable-wrapping on a proven non-table, or the
	// context's error on an abort.
	SynthesisEnd(key SynthKey, elapsed time.Duration, err error)
	// CacheHit fires when a synthesis lookup is served from the cache,
	// including waiters coalesced onto an in-flight synthesis.
	CacheHit(key SynthKey)
	// CacheMiss fires when a synthesis lookup finds nothing and a
	// synthesis is started (it always precedes SynthesisStart).
	CacheMiss(key SynthKey)
	// CacheEvict fires when a cache entry is removed by Engine.Evict or
	// by a capacity-bounded cache making room (not on Reset).
	CacheEvict(key SynthKey)
	// Fallback fires when a request aimed at a synthesized normal form
	// is redirected to the Θ(n) baseline because the torus is below the
	// normal form's minimum side; cause is the ErrTorusTooSmall-wrapping
	// error that triggered the redirect.
	Fallback(req SolveRequest, cause error)
	// PlanBuilt fires once per request after the Planner ranked its
	// strategies and before any of them runs. The plan (and the
	// strategies handed to StrategyStart/StrategyEnd) must be treated as
	// read-only.
	PlanBuilt(req SolveRequest, plan *Plan)
	// StrategyStart fires when the plan executor enters a stage; skipped
	// stages produce no events (they appear only in Result.Trace).
	StrategyStart(req SolveRequest, s *PlannedStrategy)
	// StrategyEnd fires when that stage returns; exactly one of res and
	// err is meaningful (res may accompany err for partial results, e.g.
	// a labelling that failed verification).
	StrategyEnd(req SolveRequest, s *PlannedStrategy, res *Result, err error)
}

// NopObserver is an Observer that ignores every event; embed it to
// implement a partial observer that stays compatible when events are
// added.
type NopObserver struct{}

func (NopObserver) RequestStart(SolveRequest)                    {}
func (NopObserver) RequestEnd(SolveRequest, *Result, error)      {}
func (NopObserver) SynthesisStart(SynthKey)                      {}
func (NopObserver) SynthesisEnd(SynthKey, time.Duration, error)  {}
func (NopObserver) CacheHit(SynthKey)                            {}
func (NopObserver) CacheMiss(SynthKey)                           {}
func (NopObserver) CacheEvict(SynthKey)                          {}
func (NopObserver) Fallback(SolveRequest, error)                 {}
func (NopObserver) PlanBuilt(SolveRequest, *Plan)                {}
func (NopObserver) StrategyStart(SolveRequest, *PlannedStrategy) {}
func (NopObserver) StrategyEnd(SolveRequest, *PlannedStrategy, *Result, error) {
}

// ObserverCounts is a snapshot of a CountingObserver.
type ObserverCounts struct {
	// Requests and RequestErrors count RequestStart events and the
	// subset of RequestEnd events carrying an error.
	Requests      uint64 `json:"requests"`
	RequestErrors uint64 `json:"request_errors"`
	// Syntheses counts SAT syntheses started; SynthesisErrors the ones
	// that returned an error (UNSAT proofs and aborts included), and
	// SynthesisAborts the subset that ended with a context error — in a
	// racing sweep these are the losing candidates the winner cancelled.
	// SynthesisTime is the cumulative wall-clock time inside the
	// synthesizer, aborted work included.
	Syntheses       uint64        `json:"syntheses"`
	SynthesisErrors uint64        `json:"synthesis_errors"`
	SynthesisAborts uint64        `json:"synthesis_aborts"`
	SynthesisTime   time.Duration `json:"synthesis_time_ns"`
	// CacheHits / CacheMisses / CacheEvicts count the cache events.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	CacheEvicts uint64 `json:"cache_evicts"`
	// Fallbacks counts too-small-torus redirects to the Θ(n) baseline.
	Fallbacks uint64 `json:"fallbacks"`
	// Plans counts PlanBuilt events (one per accepted request);
	// Strategies counts executed plan stages and StrategyErrors the ones
	// that failed (skipped stages fire no events).
	Plans          uint64 `json:"plans"`
	Strategies     uint64 `json:"strategies"`
	StrategyErrors uint64 `json:"strategy_errors"`
	// Windows and WindowErrors count WindowStart events and the subset
	// of WindowEnd events carrying an error; WindowTime is the
	// cumulative wall-clock time inside windowed evaluation.
	Windows      uint64        `json:"windows"`
	WindowErrors uint64        `json:"window_errors"`
	WindowTime   time.Duration `json:"window_time_ns"`
	// RemoteOps counts remote-cache interactions, RemoteOpErrors the
	// subset with outcome "error", and RemoteDegraded the coordination
	// give-ups that fell back to uncoordinated local synthesis.
	RemoteOps      uint64 `json:"remote_ops"`
	RemoteOpErrors uint64 `json:"remote_op_errors"`
	RemoteDegraded uint64 `json:"remote_degraded"`
	// GatewayRequests / GatewayRetries / GatewayErrors count the
	// gateway-side events (see the GatewayRequest mirrors).
	GatewayRequests uint64 `json:"gateway_requests"`
	GatewayRetries  uint64 `json:"gateway_retries"`
	GatewayErrors   uint64 `json:"gateway_errors"`
}

// CountingObserver is a built-in Observer that tallies every event in
// atomic counters — the cheapest way to see what an engine is doing.
// The zero value is ready to use; read a consistent-enough snapshot
// with Counts. It is safe to share one CountingObserver between
// engines.
type CountingObserver struct {
	requests        atomic.Uint64
	requestErrors   atomic.Uint64
	syntheses       atomic.Uint64
	synthesisErrors atomic.Uint64
	synthesisAborts atomic.Uint64
	synthesisNanos  atomic.Int64
	cacheHits       atomic.Uint64
	cacheMisses     atomic.Uint64
	cacheEvicts     atomic.Uint64
	fallbacks       atomic.Uint64
	plans           atomic.Uint64
	strategies      atomic.Uint64
	strategyErrors  atomic.Uint64
	windows         atomic.Uint64
	windowErrors    atomic.Uint64
	windowNanos     atomic.Int64
	remoteOps       atomic.Uint64
	remoteOpErrors  atomic.Uint64
	remoteDegraded  atomic.Uint64
	gatewayRequests atomic.Uint64
	gatewayRetries  atomic.Uint64
	gatewayErrors   atomic.Uint64
}

var (
	_ Observer            = (*CountingObserver)(nil)
	_ WindowObserver      = (*CountingObserver)(nil)
	_ RemoteCacheObserver = (*CountingObserver)(nil)
)

// Counts returns a snapshot of the counters. Like CacheStats, the
// counters are read independently: a snapshot taken while requests are
// in flight is not a single consistent cut, but each counter is exact
// once the engine is quiescent.
func (c *CountingObserver) Counts() ObserverCounts {
	return ObserverCounts{
		Requests:        c.requests.Load(),
		RequestErrors:   c.requestErrors.Load(),
		Syntheses:       c.syntheses.Load(),
		SynthesisErrors: c.synthesisErrors.Load(),
		SynthesisAborts: c.synthesisAborts.Load(),
		SynthesisTime:   time.Duration(c.synthesisNanos.Load()),
		CacheHits:       c.cacheHits.Load(),
		CacheMisses:     c.cacheMisses.Load(),
		CacheEvicts:     c.cacheEvicts.Load(),
		Fallbacks:       c.fallbacks.Load(),
		Plans:           c.plans.Load(),
		Strategies:      c.strategies.Load(),
		StrategyErrors:  c.strategyErrors.Load(),
		Windows:         c.windows.Load(),
		WindowErrors:    c.windowErrors.Load(),
		WindowTime:      time.Duration(c.windowNanos.Load()),
		RemoteOps:       c.remoteOps.Load(),
		RemoteOpErrors:  c.remoteOpErrors.Load(),
		RemoteDegraded:  c.remoteDegraded.Load(),
		GatewayRequests: c.gatewayRequests.Load(),
		GatewayRetries:  c.gatewayRetries.Load(),
		GatewayErrors:   c.gatewayErrors.Load(),
	}
}

func (c *CountingObserver) RequestStart(SolveRequest) { c.requests.Add(1) }

func (c *CountingObserver) RequestEnd(_ SolveRequest, _ *Result, err error) {
	if err != nil {
		c.requestErrors.Add(1)
	}
}

func (c *CountingObserver) SynthesisStart(SynthKey) { c.syntheses.Add(1) }

func (c *CountingObserver) SynthesisEnd(_ SynthKey, elapsed time.Duration, err error) {
	c.synthesisNanos.Add(int64(elapsed))
	if err != nil {
		c.synthesisErrors.Add(1)
		if IsContextError(err) {
			c.synthesisAborts.Add(1)
		}
	}
}

func (c *CountingObserver) CacheHit(SynthKey)            { c.cacheHits.Add(1) }
func (c *CountingObserver) CacheMiss(SynthKey)           { c.cacheMisses.Add(1) }
func (c *CountingObserver) CacheEvict(SynthKey)          { c.cacheEvicts.Add(1) }
func (c *CountingObserver) Fallback(SolveRequest, error) { c.fallbacks.Add(1) }

func (c *CountingObserver) PlanBuilt(SolveRequest, *Plan) { c.plans.Add(1) }

func (c *CountingObserver) StrategyStart(SolveRequest, *PlannedStrategy) { c.strategies.Add(1) }

func (c *CountingObserver) StrategyEnd(_ SolveRequest, _ *PlannedStrategy, _ *Result, err error) {
	if err != nil {
		c.strategyErrors.Add(1)
	}
}

// WindowStart implements WindowObserver: windowed label requests
// (streaming exports count once, like the metrics series).
func (c *CountingObserver) WindowStart(LabelRequest) { c.windows.Add(1) }

// WindowEnd implements WindowObserver.
func (c *CountingObserver) WindowEnd(_ LabelRequest, _ WindowStats, err error, elapsed time.Duration) {
	c.windowNanos.Add(int64(elapsed))
	if err != nil {
		c.windowErrors.Add(1)
	}
}

// RemoteCacheOp implements RemoteCacheObserver (install with
// WithRemoteObserver).
func (c *CountingObserver) RemoteCacheOp(_, outcome string, _ time.Duration) {
	c.remoteOps.Add(1)
	if outcome == "error" {
		c.remoteOpErrors.Add(1)
	}
}

// RemoteCacheDegraded implements RemoteCacheObserver.
func (c *CountingObserver) RemoteCacheDegraded() { c.remoteDegraded.Add(1) }

// GatewayRequest mirrors the MetricsObserver's gateway-request hook for
// tests and embedders that drive a CountingObserver by hand — the
// Gateway itself reports to a concrete *MetricsObserver.
func (c *CountingObserver) GatewayRequest(route, shard string, code int) { c.gatewayRequests.Add(1) }

// GatewayRetry counts a retried idempotent request.
func (c *CountingObserver) GatewayRetry() { c.gatewayRetries.Add(1) }

// GatewayError counts a request that exhausted every replica.
func (c *CountingObserver) GatewayError() { c.gatewayErrors.Add(1) }

// --- engine-side fan-out ----------------------------------------------------

func (e *Engine) observeRequestStart(req SolveRequest) {
	for _, o := range e.obs {
		o.RequestStart(req)
	}
}

func (e *Engine) observeRequestEnd(req SolveRequest, res *Result, err error) {
	for _, o := range e.obs {
		o.RequestEnd(req, res, err)
	}
}

func (e *Engine) observeSynthesisStart(key SynthKey) {
	for _, o := range e.obs {
		o.SynthesisStart(key)
	}
}

func (e *Engine) observeSynthesisEnd(key SynthKey, elapsed time.Duration, err error) {
	for _, o := range e.obs {
		o.SynthesisEnd(key, elapsed, err)
	}
}

func (e *Engine) observeCacheHit(key SynthKey) {
	for _, o := range e.obs {
		o.CacheHit(key)
	}
}

func (e *Engine) observeCacheMiss(key SynthKey) {
	for _, o := range e.obs {
		o.CacheMiss(key)
	}
}

func (e *Engine) observeCacheEvict(key SynthKey) {
	for _, o := range e.obs {
		o.CacheEvict(key)
	}
}

func (e *Engine) observeFallback(req SolveRequest, cause error) {
	for _, o := range e.obs {
		o.Fallback(req, cause)
	}
}

func (e *Engine) observePlanBuilt(req SolveRequest, plan *Plan) {
	for _, o := range e.obs {
		o.PlanBuilt(req, plan)
	}
}

func (e *Engine) observeStrategyStart(req SolveRequest, s *PlannedStrategy) {
	for _, o := range e.obs {
		o.StrategyStart(req, s)
	}
}

func (e *Engine) observeStrategyEnd(req SolveRequest, s *PlannedStrategy, res *Result, err error) {
	for _, o := range e.obs {
		o.StrategyEnd(req, s, res, err)
	}
}
