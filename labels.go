package lclgrid

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"lclgrid/internal/core"
)

// Coordinate-addressed label serving: the windowed-labeling request
// layer over internal/core's WindowEvaluator. A warm cache turns a
// LabelWindow call into pure table lookups — zero SAT work, O(window +
// halo) memory — which is what lets the service answer queries over tori
// far beyond the 1M-node cap of the materializing solve path.

// Label-request wire guards. Windowed labeling never materialises the
// torus, so the shape bound is per side rather than per node count: up
// to 10^6 per side, 10^12 nodes. Only the response window itself is
// allocated, so it keeps the familiar 1M-element cap.
const (
	// maxLabelSide bounds each torus side of a label/export request.
	maxLabelSide = 1_000_000
	// maxLabelWindowNodes bounds the w*h response window (the only
	// allocation proportional to the request).
	maxLabelWindowNodes = 1 << 20
)

// Label modes.
const (
	// LabelModeExact replays the identifier-driven Linial/MIS anchor
	// construction pointwise: output is byte-identical to full-grid
	// Run under the AffineIDs assignment. The default.
	LabelModeExact = "exact"
	// LabelModeLattice uses the periodic perfect-code anchor lattice: a
	// valid (but different) labeling, O(1) per node with zero halo,
	// available when both torus sides are multiples of LatticeModulus(k).
	LabelModeLattice = "lattice"
)

// LabelRequest asks for the labels of one w×h rectangle of a torus
// under a registered problem's synthesized normal form: "what does the
// optimal algorithm output at these coordinates?". It is JSON
// round-trippable and served by POST /v1/labels and `lclgrid labels`,
// e.g.:
//
//	{"key":"mis","sides":[100000,100000],"x":12345,"y":99999,"w":4,"h":3}
//
// Identifiers come from the deterministic coordinate-addressable
// assignment AffineIDs(n, Seed) — not PermutedIDs, whose shuffle is
// inherently global — so the same request always yields the same
// labels. X and Y may be any integers (they wrap around the torus).
type LabelRequest struct {
	// Key selects a registered problem; windowed labeling serves
	// table-backed problems (specs with a synthesis hint or an oracle
	// hint). Exactly one of Key and ProblemDef must be set.
	Key string `json:"key"`
	// ProblemDef supplies an inline problem in the wire-form table DSL;
	// it must be 2-dimensional, and the window is served from whichever
	// oracle-schedule normal form synthesizes first (a conjectured-global
	// problem has no windowed labeling — there is no Θ(n) fallback here).
	ProblemDef *ProblemDef `json:"problem_def,omitempty"`

	// Sides is the 2-dimensional torus shape; N is shorthand for the n×n
	// square. Sides up to 10^6 each (10^12 nodes).
	Sides []int `json:"sides,omitempty"`
	N     int   `json:"n,omitempty"`

	// Seed selects the identifier assignment AffineIDs(n, Seed); 0 is
	// the sequential assignment.
	Seed int64 `json:"seed,omitempty"`

	// The rectangle: south-west origin (X, Y), W columns east, H rows
	// north. The result is row-major, labels[r*w+c] labeling node
	// ((X+c) mod NX, (Y+r) mod NY).
	X int `json:"x"`
	Y int `json:"y"`
	W int `json:"w"`
	H int `json:"h"`

	// Mode is "exact" (default) or "lattice"; see the Label modes.
	Mode string `json:"mode,omitempty"`

	// Power forces synthesis at this anchor power instead of the spec's
	// hinted attempts; WindowH and WindowW override the anchor window
	// shape (0 selects DefaultWindow(Power)).
	Power   int `json:"power,omitempty"`
	WindowH int `json:"window_h,omitempty"`
	WindowW int `json:"window_w,omitempty"`
}

// Validate checks the wire-settable fields against the label-request
// bounds: a registry key, a 2-dimensional shape of bounded sides, a
// positive bounded window, a known mode, and bounded synthesis knobs.
// Front ends call it right after decoding; the engine validates again
// before planning.
func (r *LabelRequest) Validate() error {
	switch {
	case r.Key != "" && r.ProblemDef != nil:
		return fmt.Errorf("lclgrid: label request sets both key %q and an inline problem_def; choose one", r.Key)
	case r.Key == "" && r.ProblemDef == nil:
		return errors.New("lclgrid: label request needs a problem key or a problem_def (windowed labeling serves table-backed problems)")
	}
	if r.ProblemDef != nil {
		if err := r.ProblemDef.Validate(); err != nil {
			return err
		}
		if r.ProblemDef.Dims != 2 {
			return fmt.Errorf("lclgrid: windowed labeling is 2-dimensional, problem_def has %d dimensions", r.ProblemDef.Dims)
		}
	}
	if r.N < 0 {
		return fmt.Errorf("lclgrid: torus side must be positive, got %d", r.N)
	}
	if r.N > maxLabelSide {
		return fmt.Errorf("lclgrid: torus side %d exceeds the label-request bound %d", r.N, maxLabelSide)
	}
	if len(r.Sides) != 0 && len(r.Sides) != 2 {
		return fmt.Errorf("lclgrid: windowed labeling is 2-dimensional, got %d sides", len(r.Sides))
	}
	for i, side := range r.Sides {
		if side < 1 {
			return fmt.Errorf("lclgrid: torus dimension %d has side %d < 1", i, side)
		}
		if side > maxLabelSide {
			return fmt.Errorf("lclgrid: torus side %d exceeds the label-request bound %d", side, maxLabelSide)
		}
	}
	if r.W < 1 || r.H < 1 {
		return fmt.Errorf("lclgrid: label window must be positive, got %dx%d", r.W, r.H)
	}
	if r.W > maxLabelWindowNodes || r.H > maxLabelWindowNodes/r.W {
		return fmt.Errorf("lclgrid: label window %dx%d exceeds the request bound (%d nodes)", r.W, r.H, maxLabelWindowNodes)
	}
	switch r.Mode {
	case "", LabelModeExact, LabelModeLattice:
	default:
		return fmt.Errorf("lclgrid: unknown label mode %q (use %q or %q)", r.Mode, LabelModeExact, LabelModeLattice)
	}
	for name, v := range map[string]int{
		"power": r.Power, "window_h": r.WindowH, "window_w": r.WindowW,
	} {
		if v < 0 {
			return fmt.Errorf("lclgrid: request field %q must be positive when set, got %d", name, v)
		}
	}
	if r.Power > maxRequestPower {
		return fmt.Errorf("lclgrid: anchor power %d exceeds the request bound %d", r.Power, maxRequestPower)
	}
	if r.WindowH > maxRequestWindow || r.WindowW > maxRequestWindow {
		return fmt.Errorf("lclgrid: anchor window %dx%d exceeds the request bound %d", r.WindowH, r.WindowW, maxRequestWindow)
	}
	return nil
}

// WindowStats is the work account of a windowed evaluation.
type WindowStats = core.WindowStats

// AffineIDs materialises the deterministic identifier assignment
// windowed labeling uses — for comparing against full-grid Run on small
// tori. Seed 0 is SequentialIDs; other seeds select an affine
// permutation computable in O(1) per node (unlike PermutedIDs).
func AffineIDs(n int, seed int64) []int { return core.AffineIDs(n, seed) }

// LatticeModulus returns the torus-side modulus LabelModeLattice
// requires for anchor power k (5 for k=1, 25 for k=3).
func LatticeModulus(k int) int { return core.LatticeModulus(k) }

// LabelResponse carries the labels of one rectangle. Every field is a
// deterministic function of the request and the catalogue — there is no
// timing in the document — which is what makes label responses
// HTTP-cacheable under a strong ETag.
type LabelResponse struct {
	// Key and Problem echo the spec served.
	Key     string `json:"key"`
	Problem string `json:"problem"`
	// Sides is the resolved torus shape; X, Y are the rectangle origin
	// normalised into it.
	Sides []int  `json:"sides"`
	Seed  int64  `json:"seed,omitempty"`
	X     int    `json:"x"`
	Y     int    `json:"y"`
	W     int    `json:"w"`
	H     int    `json:"h"`
	Mode  string `json:"mode"`
	// Attempt is the normal form that served the window.
	Attempt SynthAttempt `json:"attempt"`
	// Labels is row-major: Labels[r*W+c] labels node ((X+c) mod NX,
	// (Y+r) mod NY).
	Labels []int `json:"labels"`
	// Rounds is the synchronous round count of the simulated distributed
	// algorithm on this torus (identical to a full-grid Run's account).
	Rounds   int         `json:"rounds"`
	CacheHit bool        `json:"cache_hit"`
	Stats    WindowStats `json:"stats"`
}

// labelPlan is the resolved form of a LabelRequest: spec, torus and the
// fitting synthesis attempts, in deterministic order. Building it does
// zero SAT work.
type labelPlan struct {
	spec     *ProblemSpec
	t        *Torus
	attempts []SynthAttempt
	mode     string
}

// planLabel validates and resolves a label request. Every failure is a
// *RequestError: these are the client's to fix (bad key, non-table
// problem, shape too small for every normal form), never server faults.
func (e *Engine) planLabel(req LabelRequest) (*labelPlan, error) {
	fail := func(err error) (*labelPlan, error) {
		var reqErr *RequestError
		if errors.As(err, &reqErr) {
			return nil, err
		}
		return nil, &RequestError{Err: err}
	}
	if err := req.Validate(); err != nil {
		return fail(err)
	}
	var (
		spec *ProblemSpec
		err  error
	)
	if req.ProblemDef != nil {
		// Inline definitions get the same transient oracle spec a
		// registered user problem carries; the Key stays empty and the
		// identity for caching is the compiled problem's fingerprint.
		p, cerr := req.ProblemDef.Compile()
		if cerr != nil {
			return fail(cerr)
		}
		spec = &ProblemSpec{
			Name: p.Name(), Dims: p.Dims(), NumLabels: p.K(),
			Class: ClassUnknown, MinSide: 12,
			Problem: func() *Problem { return p },
			Oracle:  true, Source: SourceUser,
		}
	} else {
		spec, err = e.reg.Lookup(req.Key)
		if err != nil {
			return fail(err)
		}
	}
	if spec.Problem == nil {
		return fail(fmt.Errorf("lclgrid: problem %q has no SFT form; windowed labeling needs a normal-form lookup table", req.Key))
	}
	if spec.Dims != 0 && spec.Dims != 2 {
		return fail(fmt.Errorf("lclgrid: windowed labeling is 2-dimensional, problem %q is %d-dimensional", spec.Name, spec.Dims))
	}
	attempts := spec.Attempts
	if len(attempts) == 0 && spec.Oracle {
		// Oracle specs carry no synthesis hint up front; windowed labeling
		// tries the paper's oracle schedule in order and serves the first
		// normal form that synthesizes.
		attempts = oracleAttempts()
	}
	if req.Power > 0 {
		h, w := req.WindowH, req.WindowW
		dh, dw := DefaultWindow(req.Power)
		if h == 0 {
			h = dh
		}
		if w == 0 {
			w = dw
		}
		attempts = []SynthAttempt{{K: req.Power, H: h, W: w}}
	}
	if len(attempts) == 0 {
		return fail(fmt.Errorf("lclgrid: problem %q has no normal-form synthesis hint (%s); windowed labeling serves table-backed problems only (or force a shape with \"power\")", req.Key, spec.HintSummary()))
	}
	var t *Torus
	switch {
	case len(req.Sides) == 2:
		t, err = NewTorus(req.Sides...)
	case req.N > 0:
		t = Square(req.N)
	default:
		t = Square(spec.SmallestSide())
	}
	if err != nil {
		return fail(err)
	}
	fitting := attempts[:0:0]
	for _, a := range attempts {
		if attemptFits(t, a) {
			fitting = append(fitting, a)
		}
	}
	if len(fitting) == 0 {
		return fail(fmt.Errorf("lclgrid: torus %dx%d is below every normal form's minimum side for %q (%s); windowed labeling has no Θ(n) fallback", t.NX(), t.NY(), req.Key, spec.HintSummary()))
	}
	mode := req.Mode
	if mode == "" {
		mode = LabelModeExact
	}
	return &labelPlan{spec: spec, t: t, attempts: fitting, mode: mode}, nil
}

// LabelWindow labels one rectangle of a torus under a registered
// problem's synthesized normal form. Synthesis rides the engine's
// cache/singleflight path — attempts are tried in hint order, so a warm
// cache answers with zero SAT work — and the window is then evaluated
// coordinate-wise in O(window + halo) time and memory, never allocating
// anything proportional to the torus. The response is a deterministic
// function of the request and the catalogue.
func (e *Engine) LabelWindow(ctx context.Context, req LabelRequest) (*LabelResponse, error) {
	e.observeWindowStart(req)
	ctx, sp := StartSpan(ctx, "window")
	start := time.Now()
	res, err := e.labelWindow(ctx, req)
	var stats WindowStats
	if res != nil {
		stats = res.Stats
		sp.SetAttr("window_nodes", strconv.Itoa(stats.WindowNodes))
		sp.SetAttr("halo_nodes", strconv.Itoa(stats.HaloNodes))
	}
	sp.SetError(err)
	sp.End()
	e.observeWindowEnd(req, stats, err, time.Since(start))
	return res, err
}

func (e *Engine) labelWindow(ctx context.Context, req LabelRequest) (*LabelResponse, error) {
	lp, err := e.planLabel(req)
	if err != nil {
		return nil, err
	}
	alg, winner, cached, err := e.synthesizeInOrder(ctx, lp)
	if err != nil {
		return nil, err
	}
	ev, err := core.NewWindowEvaluator(alg, lp.t, req.Seed, lp.mode == LabelModeLattice)
	if err != nil {
		// Shape constraints (lattice divisibility) are the client's choice.
		return nil, &RequestError{Err: err}
	}
	labels, err := ev.LabelRect(ctx, req.X, req.Y, req.W, req.H)
	if err != nil {
		return nil, err
	}
	nx, ny := lp.t.NX(), lp.t.NY()
	return &LabelResponse{
		Key:      req.Key,
		Problem:  lp.spec.Name,
		Sides:    []int{nx, ny},
		Seed:     req.Seed,
		X:        ((req.X % nx) + nx) % nx,
		Y:        ((req.Y % ny) + ny) % ny,
		W:        req.W,
		H:        req.H,
		Mode:     lp.mode,
		Attempt:  winner,
		Labels:   labels,
		Rounds:   ev.Rounds(),
		CacheHit: cached,
		Stats:    ev.Stats(),
	}, nil
}

// synthesizeInOrder resolves the plan's normal form deterministically:
// attempts are tried strictly in hint order (unlike the racing solve
// path, whose winner depends on completion order) so that identical
// requests always serve identical tables — the property label ETags and
// pinned fixtures rely on. A warm cache makes every try a lookup.
func (e *Engine) synthesizeInOrder(ctx context.Context, lp *labelPlan) (*Synthesized, SynthAttempt, bool, error) {
	p := lp.spec.Problem()
	var lastErr error
	for _, a := range lp.attempts {
		alg, cached, err := e.Synthesize(ctx, p, a.K, a.H, a.W)
		if err == nil {
			return alg, a, cached, nil
		}
		if IsContextError(err) {
			return nil, SynthAttempt{}, false, err
		}
		lastErr = fmt.Errorf("k=%d window %dx%d: %w", a.K, a.H, a.W, err)
	}
	return nil, SynthAttempt{}, false, lastErr
}

// WindowObserver is an optional extension of Observer: observers that
// also implement it receive windowed-labeling events. It is a side
// interface (rather than new Observer methods) so existing Observer
// implementations keep compiling.
type WindowObserver interface {
	// WindowStart fires when LabelWindow accepts a request.
	WindowStart(req LabelRequest)
	// WindowEnd fires when it completes; stats is zero when err != nil.
	WindowEnd(req LabelRequest, stats WindowStats, err error, elapsed time.Duration)
}

func (e *Engine) observeWindowStart(req LabelRequest) {
	for _, o := range e.obs {
		if wo, ok := o.(WindowObserver); ok {
			wo.WindowStart(req)
		}
	}
}

func (e *Engine) observeWindowEnd(req LabelRequest, stats WindowStats, err error, elapsed time.Duration) {
	for _, o := range e.obs {
		if wo, ok := o.(WindowObserver); ok {
			wo.WindowEnd(req, stats, err, elapsed)
		}
	}
}

// --- streaming whole-grid export -------------------------------------------

// ExportRequest asks for a whole grid streamed in row bands: the same
// problem/shape/seed/mode fields as LabelRequest, plus band sizing and
// format knobs consumed by the HTTP layer.
type ExportRequest struct {
	Key     string `json:"key"`
	Sides   []int  `json:"sides,omitempty"`
	N       int    `json:"n,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	Mode    string `json:"mode,omitempty"`
	Power   int    `json:"power,omitempty"`
	WindowH int    `json:"window_h,omitempty"`
	WindowW int    `json:"window_w,omitempty"`

	// BandRows is the number of grid rows per emitted band; 0 picks the
	// largest band that keeps band×NX within the window bound.
	BandRows int `json:"band_rows,omitempty"`
	// Format selects the wire encoding of the HTTP export: "jsonl"
	// (default) or "int32" (raw little-endian labels, row-major).
	Format string `json:"format,omitempty"`
}

// Export formats.
const (
	ExportFormatJSONL = "jsonl"
	ExportFormatInt32 = "int32"
)

// labelRequest derives the LabelRequest used to plan the export; the
// per-band rectangle shape is substituted during streaming.
func (r *ExportRequest) labelRequest() LabelRequest {
	return LabelRequest{
		Key: r.Key, Sides: r.Sides, N: r.N, Seed: r.Seed, Mode: r.Mode,
		Power: r.Power, WindowH: r.WindowH, WindowW: r.WindowW,
		W: 1, H: 1,
	}
}

// Validate checks the wire-settable export fields.
func (r *ExportRequest) Validate() error {
	lr := r.labelRequest()
	if err := lr.Validate(); err != nil {
		return err
	}
	if r.BandRows < 0 {
		return fmt.Errorf("lclgrid: request field %q must be positive when set, got %d", "band_rows", r.BandRows)
	}
	if r.BandRows > maxLabelWindowNodes {
		return fmt.Errorf("lclgrid: band_rows %d exceeds the request bound %d", r.BandRows, maxLabelWindowNodes)
	}
	switch r.Format {
	case "", ExportFormatJSONL, ExportFormatInt32:
	default:
		return fmt.Errorf("lclgrid: unknown export format %q (use %q or %q)", r.Format, ExportFormatJSONL, ExportFormatInt32)
	}
	return nil
}

// LabelBand is one row band of an exported grid: Rows grid rows
// starting at row Y, row-major (Labels[r*NX+c] labels node (c, Y+r)).
type LabelBand struct {
	Y      int   `json:"y"`
	Rows   int   `json:"rows"`
	Labels []int `json:"labels"`
}

// bandRows resolves the export's band height for a torus of width nx:
// the largest band keeping band×nx within the window bound, clamped to
// the explicit BandRows when set.
func (r *ExportRequest) bandRows(nx, ny int) int {
	band := maxLabelWindowNodes / nx
	if band < 1 {
		band = 1
	}
	if r.BandRows > 0 && r.BandRows < band {
		band = r.BandRows
	}
	if band > ny {
		band = ny
	}
	return band
}

// ExportGrid evaluates the whole grid band by band, invoking emit for
// each: bounded memory regardless of grid size (the evaluator's memo
// state is reset between bands), stopping with the context's error when
// cancelled mid-stream. Observers see the export as a single window
// request with cumulative stats.
func (e *Engine) ExportGrid(ctx context.Context, req ExportRequest, emit func(LabelBand) error) error {
	lreq := req.labelRequest()
	e.observeWindowStart(lreq)
	ctx, sp := StartSpan(ctx, "export")
	start := time.Now()
	stats, err := e.exportGrid(ctx, req, emit)
	sp.SetAttr("window_nodes", strconv.Itoa(stats.WindowNodes))
	sp.SetError(err)
	sp.End()
	e.observeWindowEnd(lreq, stats, err, time.Since(start))
	return err
}

func (e *Engine) exportGrid(ctx context.Context, req ExportRequest, emit func(LabelBand) error) (WindowStats, error) {
	lp, err := e.planLabel(req.labelRequest())
	if err != nil {
		return WindowStats{}, err
	}
	alg, _, _, err := e.synthesizeInOrder(ctx, lp)
	if err != nil {
		return WindowStats{}, err
	}
	ev, err := core.NewWindowEvaluator(alg, lp.t, req.Seed, lp.mode == LabelModeLattice)
	if err != nil {
		return WindowStats{}, &RequestError{Err: err}
	}
	nx, ny := lp.t.NX(), lp.t.NY()
	band := req.bandRows(nx, ny)
	for y := 0; y < ny; y += band {
		rows := band
		if y+rows > ny {
			rows = ny - y
		}
		labels, err := ev.LabelRect(ctx, 0, y, nx, rows)
		if err != nil {
			return ev.Stats(), err
		}
		if err := emit(LabelBand{Y: y, Rows: rows, Labels: labels}); err != nil {
			return ev.Stats(), err
		}
		ev.Reset()
	}
	return ev.Stats(), nil
}
